"""The parallel compute engine: kernels fan out over worker processes.

CPython's GIL rules out thread-level parallelism for big-int arithmetic,
so :class:`ParallelEngine` shards work across a lazily created
``multiprocessing`` pool:

- **MSM**: the (point, scalar) pairs are split into per-worker chunks;
  each worker runs the full Pippenger bucket method on its chunk and the
  partial sums are folded with one Jacobian addition per chunk.  (Points
  are sharded rather than Pippenger windows: window sharding would ship
  the whole input to every worker, and in CPython the pickling cost of
  the duplicated inputs dominates the saved additions.)
- **NTT batches**: independent transforms — e.g. the prover's 6 live
  coset FFTs of round 3 — map one job per worker task.  Per-process
  :class:`~repro.field.ntt.Domain` caches mean twiddle tables are built
  once per worker, not once per job.
- **batch inversion**: Montgomery's trick is sequential within a chain,
  so long inputs are split into independent chains, one per worker.

Under the fast substrate, inputs travel through
``multiprocessing.shared_memory`` segments of the contiguous packed
representation (:mod:`repro.backend.shm`) instead of being pickled:

- fixed point tables (SRS G1 powers, Groth16 query tables) are packed
  into a segment *once per table* and pinned by owner identity, so warm
  proofs ship only scalars;
- per-call scalars/values go into scratch segments that are unlinked in
  a ``finally`` — worker crash and abort paths included — and a
  watchdog timeout (``task_timeout``) converts a wedged pool into a
  :class:`~repro.errors.BackendError` rather than a hang;
- NTT/inverse results are written by workers into a result segment, so
  nothing big is pickled in either direction.

The pickled-list path is retained, bit-identical, both as the
``reference`` substrate mode and via ``use_shm=False`` (the oracle the
differential suite compares against).  Small inputs fall back to the
serial kernels (fork/pickle overhead would swamp the win); the
thresholds are constructor arguments so tests can force the parallel
paths.

The overrides are the internal ``_ntt_batch`` / ``_msm_jac`` /
``_msm_srs`` / ``_msm_g1_fixed`` / ``_msm_jac_g2`` / ``_batch_inverse``
dispatch targets.  The ``engine.*`` kernel metrics are recorded by the
public wrappers in the base class, in this (parent) process, so a
parallel run reports exactly the same ``engine.*`` counters as a serial
run of the same workload.  On top of that, every fan-out goes through
:func:`repro.telemetry.workers.dispatch`: at ``REPRO_TELEMETRY=profile``
each task payload carries a trace context, workers time their
queue-wait / shm-attach / compute phases and count the kernels they ran,
and the parent merges the piggybacked stats back as ``worker.*`` metrics
and ``worker.task`` child spans of the ``engine.dispatch`` span — so the
pool is no longer a telemetry black box.  (The ``worker.*`` namespace is
separate from ``engine.*`` precisely so the serial/parallel counter
parity above stays bit-exact.)  Every worker task carries the parent's
substrate mode: workers are forked, so a runtime mode flip in the parent
would otherwise leave them on the import-time mode.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

from repro import substrate
from repro import telemetry as _tel
from repro.backend import shm as _shm
from repro.backend.engine import Engine, apply_ntt_job
from repro.field.ntt import Domain
from repro.curve.g1 import jac_add, jac_batch_normalize
from repro.curve.g2 import jac2_add
from repro.curve.msm import msm_g2_jacobian, msm_jacobian
from repro.errors import BackendError, FieldError
from repro.field.fr import MODULUS as _R, batch_inverse as _fr_batch_inverse
from repro.field.frvec import pack_scalars, unpack_scalars
from repro.telemetry import workers as _workers

_CELL = 32  # packed scalar cell size, bytes

# Every worker function takes ``(ctx, ...)`` — the first element is the
# dispatch trace context (``None`` below profile level) prepended by
# ``Dispatch.tag`` — and returns ``(result, stats-blob-or-None)`` so the
# parent's ``Dispatch.collect`` can merge worker-side telemetry.


def _msm_chunk_g1(args: tuple) -> tuple:
    ctx, mode, points, scalars = args
    rec = _workers.task_begin(ctx)
    substrate.set_mode(mode)
    rec.set_size(len(points))
    rec.count("msm_g1")
    with rec.timer("compute"):
        out = msm_jacobian(points, scalars)
    return out, rec.blob()


def _msm_chunk_g2(args: tuple) -> tuple:
    ctx, mode, points, scalars = args
    rec = _workers.task_begin(ctx)
    substrate.set_mode(mode)
    rec.set_size(len(points))
    rec.count("msm_g2")
    with rec.timer("compute"):
        out = msm_g2_jacobian(points, scalars)
    return out, rec.blob()


def _batch_inverse_chunk(args: tuple) -> tuple:
    ctx, values = args
    rec = _workers.task_begin(ctx)
    rec.set_size(len(values))
    rec.count("inverse")
    with rec.timer("compute"):
        out = _fr_batch_inverse(values)
    return out, rec.blob()


def _ntt_job_with_mode(args: tuple) -> tuple:
    ctx, mode, job = args
    rec = _workers.task_begin(ctx)
    substrate.set_mode(mode)
    rec.set_size(job[1])
    rec.count(job[0])
    with rec.timer("compute"):
        out = apply_ntt_job(job)
    return out, rec.blob()


def _msm_shm_chunk(args: tuple) -> tuple:
    """Worker: MSM over a slice of packed shared-memory segments."""
    ctx, mode, pts_name, scal_name, start, count = args
    rec = _workers.task_begin(ctx)
    substrate.set_mode(mode)
    with rec.timer("shm_attach"):
        points = _shm.unpack_points(_shm.attach_segment(pts_name).buf, start, count)
        scalars = unpack_scalars(_shm.attach_segment(scal_name).buf, start, count)
    rec.set_size(count)
    rec.count("msm_g1")
    with rec.timer("compute"):
        out = msm_jacobian(points, scalars)
    return out, rec.blob()


def _attach_twiddle_tables(tw_name: str, n: int) -> None:
    """Seed the worker's Domain cache from a packed twiddle segment.

    Layout (32-byte scalar cells): ``[omega, omega_inv, n_inv]`` header
    followed by the ``n/2`` forward and ``n/2`` inverse twiddles.  A
    no-op when this worker already holds a size-``n`` domain — the first
    task of each size pays one unpack, every later task is a cache hit,
    and nothing runs the O(n) ``Domain.__init__`` twiddle loop.
    """
    if n in Domain._cache:
        return
    buf = _shm.attach_segment(tw_name).buf
    half = max(n >> 1, 1)
    omega, omega_inv, n_inv = unpack_scalars(buf, 0, 3)
    twiddles = unpack_scalars(buf, 3, half)
    inv_twiddles = unpack_scalars(buf, 3 + half, half)
    Domain.seed_cache(
        Domain.from_tables(n, omega, omega_inv, n_inv, twiddles, inv_twiddles)
    )


def _ntt_shm_job(args: tuple) -> tuple:
    """Worker: one NTT over packed cells; result written back to shm."""
    (
        ctx,
        mode,
        in_name,
        out_name,
        tw_name,
        kind,
        n,
        in_start,
        in_count,
        out_start,
        shift,
    ) = args
    rec = _workers.task_begin(ctx)
    substrate.set_mode(mode)
    with rec.timer("shm_attach"):
        values = unpack_scalars(_shm.attach_segment(in_name).buf, in_start, in_count)
        _attach_twiddle_tables(tw_name, n)
    rec.set_size(n)
    rec.count(kind)
    with rec.timer("compute"):
        out = apply_ntt_job((kind, n, values, shift))
    with rec.timer("shm_attach"):
        buf = _shm.attach_segment(out_name).buf
        buf[out_start * _CELL : (out_start + len(out)) * _CELL] = pack_scalars(out)
    return None, rec.blob()


def _inverse_shm_chunk(args: tuple) -> tuple:
    """Worker: Montgomery-chain inversion of a shm slice, written back."""
    ctx, in_name, out_name, start, count = args
    rec = _workers.task_begin(ctx)
    with rec.timer("shm_attach"):
        values = unpack_scalars(_shm.attach_segment(in_name).buf, start, count)
    rec.set_size(count)
    rec.count("inverse")
    with rec.timer("compute"):
        out = _fr_batch_inverse(values)
    with rec.timer("shm_attach"):
        buf = _shm.attach_segment(out_name).buf
        buf[start * _CELL : (start + count) * _CELL] = pack_scalars(out)
    return None, rec.blob()


def _chunk(seq: list, pieces: int) -> list[list]:
    """Split ``seq`` into at most ``pieces`` contiguous, balanced chunks."""
    pieces = max(1, min(pieces, len(seq)))
    size, extra = divmod(len(seq), pieces)
    out = []
    start = 0
    for i in range(pieces):
        end = start + size + (1 if i < extra else 0)
        out.append(seq[start:end])
        start = end
    return out


def _spans(n: int, pieces: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``(start, count)`` spans covering ``range(n)``."""
    pieces = max(1, min(pieces, n))
    size, extra = divmod(n, pieces)
    out = []
    start = 0
    for i in range(pieces):
        count = size + (1 if i < extra else 0)
        out.append((start, count))
        start += count
    return out


class ParallelEngine(Engine):
    """Engine that chunks MSMs, NTT batches and inversions across workers."""

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        min_msm_points: int = 128,
        min_ntt_jobs: int = 2,
        min_ntt_size: int = 256,
        min_inverse_size: int = 8192,
        use_shm: bool = True,
        task_timeout: float | None = None,
    ):
        super().__init__()
        if workers is None:
            env = os.environ.get("REPRO_WORKERS")
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    raise BackendError(
                        "REPRO_WORKERS must be an integer, got %r" % env
                    ) from None
            else:
                workers = os.cpu_count() or 1
        self.workers = max(1, workers)
        self.min_msm_points = min_msm_points
        self.min_ntt_jobs = min_ntt_jobs
        self.min_ntt_size = min_ntt_size
        self.min_inverse_size = min_inverse_size
        self.use_shm = use_shm
        self.task_timeout = task_timeout
        self._pool = None
        #: Pinned packed-point segments: id(owner) -> (owner, segment).
        self._point_segs: dict = {}
        #: Pinned packed twiddle-table segments: domain size -> segment.
        self._twiddle_segs: dict = {}

    # ------------------------------------------------------------ pool mgmt

    def _get_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = ctx.Pool(self.workers)
        return self._pool

    def close(self) -> None:
        self._discard_pool(blocking=True)
        for owner_id in list(self._point_segs):
            _, seg = self._point_segs.pop(owner_id)
            _shm.release_segment(seg)
        self._release_twiddle_segs()

    def _release_twiddle_segs(self) -> None:
        for n in list(self._twiddle_segs):
            _shm.release_segment(self._twiddle_segs.pop(n))

    def _discard_pool(self, blocking: bool) -> None:
        """Tear down the worker pool.

        ``blocking=False`` is the crash path: a SIGKILLed worker can die
        holding the shared task-queue lock, and ``Pool.terminate()`` then
        deadlocks joining its handler threads — so after a watchdog
        timeout the pool is terminated from a daemon thread and abandoned
        rather than joined.  Segment cleanup never depends on it.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if blocking:
            pool.terminate()
            pool.join()
        else:
            threading.Thread(target=pool.terminate, daemon=True).start()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def _run_tasks(self, func, tasks: list, kernel: str) -> list:
        """``pool.map`` with a watchdog and telemetry dispatch wrapping.

        A crashed/wedged worker surfaces as a :class:`BackendError`
        (after pool teardown) instead of a hang, so callers' ``finally``
        blocks can release segments.  The dispatch context tags every
        task payload with the trace context (profile level) and merges
        the workers' piggybacked stats blobs on the way out; below
        profile it only strips the uniform ``(result, None)`` wrapping.
        """
        with _workers.dispatch(kernel, len(tasks)) as dsp:
            tagged = dsp.tag(tasks)
            pool = self._get_pool()
            if self.task_timeout is None:
                return dsp.collect(pool.map(func, tagged))
            result = pool.map_async(func, tagged)
            try:
                return dsp.collect(result.get(self.task_timeout))
            except multiprocessing.TimeoutError:
                self._discard_pool(blocking=False)
                for owner_id in list(self._point_segs):
                    _, seg = self._point_segs.pop(owner_id)
                    _shm.release_segment(seg)
                self._release_twiddle_segs()
                raise BackendError(
                    "parallel kernel timed out after %.1fs (worker crash?)"
                    % self.task_timeout
                ) from None

    # ----------------------------------------------------- shm MSM plumbing

    def _shm_enabled(self) -> bool:
        return self.use_shm and substrate.fast_enabled()

    def _pinned_point_segment(self, owner, jac_points) -> object:
        """The packed shm image of a fixed point table, created once.

        Keyed and pinned by owner identity like the engine's Jacobian
        caches; released by :meth:`close` (and the shm module's atexit
        backstop)."""
        key = id(owner)
        hit = self._point_segs.get(key)
        if hit is not None and hit[0] is owner:
            return hit[1]
        packed = _shm.pack_points(list(jac_points))
        seg = _shm.create_segment(len(packed))
        seg.buf[: len(packed)] = packed
        self._point_segs[key] = (owner, seg)
        return seg

    def _msm_shm_sharded(
        self, pts_name: str, scalars: list[int], kernel: str = "msm_g1"
    ) -> tuple:
        """Fan an MSM out over shm slices; scalars go in a scratch segment."""
        n = len(scalars)
        packed = pack_scalars(scalars)
        scal_seg = _shm.create_segment(len(packed))
        try:
            scal_seg.buf[: len(packed)] = packed
            mode = substrate.mode()
            tasks = [
                (mode, pts_name, scal_seg.name, start, count)
                for start, count in _spans(n, self.workers)
            ]
            partials = self._run_tasks(_msm_shm_chunk, tasks, kernel)
        finally:
            _shm.release_segment(scal_seg)
        result = partials[0]
        for part in partials[1:]:
            result = jac_add(result, part)
        return result

    def _twiddle_segment(self, n: int) -> object:
        """The packed shm image of a size-``n`` domain's twiddle tables.

        Built once per domain size from the parent's (already cached)
        :class:`~repro.field.ntt.Domain` and pinned for the engine's
        lifetime like the fixed point tables — workers attach instead of
        re-running the O(n) twiddle build in every forked process.
        """
        seg = self._twiddle_segs.get(n)
        if _tel.metrics_enabled():
            _tel.counter(
                "engine.cache.hits" if seg is not None else "engine.cache.misses",
                cache="ntt_twiddle_shm",
            ).inc()
        if seg is not None:
            return seg
        dom = Domain.get(n)
        twiddles, inv_twiddles = dom.tables()
        packed = pack_scalars(
            [dom.omega, dom.omega_inv, dom.n_inv] + twiddles + inv_twiddles
        )
        seg = _shm.create_segment(len(packed))
        seg.buf[: len(packed)] = packed
        self._twiddle_segs[n] = seg
        return seg

    # -------------------------------------------------------------- kernels

    def _use_pool(self, n_items: int, threshold: int) -> bool:
        return self.workers > 1 and n_items >= threshold

    def _ntt_batch(self, jobs: list[tuple]) -> list[list[int]]:
        big_jobs = sum(1 for job in jobs if job[1] >= self.min_ntt_size)
        if not self._use_pool(big_jobs, self.min_ntt_jobs):
            return [apply_ntt_job(job) for job in jobs]
        if not self._shm_enabled():
            mode = substrate.mode()
            return self._run_tasks(
                _ntt_job_with_mode, [(mode, job) for job in jobs], "ntt"
            )
        # Concatenate every job's input cells into one segment; workers
        # write transforms into a second segment at per-job offsets.
        in_cells = sum(len(job[2]) for job in jobs)
        out_cells = sum(job[1] for job in jobs)
        # Nested try/finally: if the second create_segment raises, the
        # first must still be released (a flat `finally` after both
        # acquires leaves `in_seg` stranded — RES-001).
        in_seg = _shm.create_segment(in_cells * _CELL)
        try:
            out_seg = _shm.create_segment(out_cells * _CELL)
            try:
                mode = substrate.mode()
                tasks = []
                in_start = out_start = 0
                pos = 0
                for kind, n, values, shift in jobs:
                    packed = pack_scalars(values)
                    in_seg.buf[pos : pos + len(packed)] = packed
                    pos += len(packed)
                    tasks.append(
                        (
                            mode,
                            in_seg.name,
                            out_seg.name,
                            self._twiddle_segment(n).name,
                            kind,
                            n,
                            in_start,
                            len(values),
                            out_start,
                            shift,
                        )
                    )
                    in_start += len(values)
                    out_start += n
                self._run_tasks(_ntt_shm_job, tasks, "ntt")
                out = []
                start = 0
                for _, n, _, _ in jobs:
                    out.append(unpack_scalars(out_seg.buf, start, n))
                    start += n
                return out
            finally:
                _shm.release_segment(out_seg)
        finally:
            _shm.release_segment(in_seg)

    def _msm_jac(self, points: list[tuple], scalars: list[int]) -> tuple:
        if not self._use_pool(len(points), self.min_msm_points):
            return msm_jacobian(points, scalars)
        if not self._shm_enabled():
            mode = substrate.mode()
            chunks = [
                (mode, pts, scs)
                for pts, scs in zip(
                    _chunk(list(points), self.workers),
                    _chunk(list(scalars), self.workers),
                )
            ]
            partials = self._run_tasks(_msm_chunk_g1, chunks, "msm_g1")
            result = partials[0]
            for part in partials[1:]:
                result = jac_add(result, part)
            return result
        if len(points) != len(scalars):
            raise BackendError(
                "msm: %d points but %d scalars" % (len(points), len(scalars))
            )
        # Normalise in the parent so points pack as 64-byte affine cells
        # (infinity packs as the zero cell and is filtered by workers).
        finite = [i for i, p in enumerate(points) if p[2] != 0]
        normalized = jac_batch_normalize([points[i] for i in finite])
        cells: list[tuple] = [_shm_INF] * len(points)
        for i, p in zip(finite, normalized):
            cells[i] = p
        packed = _shm.pack_points(cells)
        pts_seg = _shm.create_segment(len(packed))
        try:
            pts_seg.buf[: len(packed)] = packed
            return self._msm_shm_sharded(pts_seg.name, [int(s) % _R for s in scalars])
        finally:
            _shm.release_segment(pts_seg)

    def _msm_srs(self, srs, scalars: list[int]) -> tuple:
        if not (self._shm_enabled() and self._use_pool(len(scalars), self.min_msm_points)):
            return super()._msm_srs(srs, scalars)
        points = self.srs_g1_jacobian(srs)
        if len(scalars) > len(points):
            raise BackendError(
                "msm_srs: %d scalars but SRS has %d G1 powers"
                % (len(scalars), len(points))
            )
        seg = self._pinned_point_segment(srs, points)
        return self._msm_shm_sharded(
            seg.name, [int(s) % _R for s in scalars], "msm_srs"
        )

    def _msm_g1_fixed(self, points, scalars: list[int]) -> tuple:
        if not (self._shm_enabled() and self._use_pool(len(scalars), self.min_msm_points)):
            return super()._msm_g1_fixed(points, scalars)
        jac = self._fixed_jacobian(points)
        seg = self._pinned_point_segment(points, jac)
        return self._msm_shm_sharded(
            seg.name, [int(s) % _R for s in scalars], "msm_g1_fixed"
        )

    def _msm_jac_g2(self, points: list[tuple], scalars: list[int]) -> tuple:
        if not self._use_pool(len(points), self.min_msm_points):
            return msm_g2_jacobian(points, scalars)
        mode = substrate.mode()
        chunks = [
            (mode, pts, scs)
            for pts, scs in zip(
                _chunk(list(points), self.workers), _chunk(list(scalars), self.workers)
            )
        ]
        partials = self._run_tasks(_msm_chunk_g2, chunks, "msm_g2")
        result = partials[0]
        for part in partials[1:]:
            result = jac2_add(result, part)
        return result

    def _batch_inverse(self, values: list[int]) -> list[int]:
        if not self._use_pool(len(values), self.min_inverse_size):
            return _fr_batch_inverse(values)
        # Surface the zero-element error with its *global* index before
        # sharding, preserving the serial error contract.
        for i, v in enumerate(values):
            if v % _R == 0:
                raise FieldError("batch inverse of zero at index %d" % i)
        if not self._shm_enabled():
            chunks = [(c,) for c in _chunk(list(values), self.workers)]
            parts = self._run_tasks(_batch_inverse_chunk, chunks, "inverse")
            out: list[int] = []
            for part in parts:
                out.extend(part)
            return out
        n = len(values)
        packed = pack_scalars(values)
        # Nested like _ntt_batch: in_seg must not leak when the second
        # create_segment raises.
        in_seg = _shm.create_segment(len(packed))
        try:
            out_seg = _shm.create_segment(n * _CELL)
            try:
                in_seg.buf[: len(packed)] = packed
                tasks = [
                    (in_seg.name, out_seg.name, start, count)
                    for start, count in _spans(n, self.workers)
                ]
                self._run_tasks(_inverse_shm_chunk, tasks, "inverse")
                return unpack_scalars(out_seg.buf, 0, n)
            finally:
                _shm.release_segment(out_seg)
        finally:
            _shm.release_segment(in_seg)


#: Placeholder cell for points at infinity in the parent-side packer.
_shm_INF = (0, 0, 0)
