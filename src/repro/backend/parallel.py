"""The parallel compute engine: kernels fan out over worker processes.

CPython's GIL rules out thread-level parallelism for big-int arithmetic,
so :class:`ParallelEngine` shards work across a lazily created
``multiprocessing`` pool:

- **MSM**: the (point, scalar) pairs are split into per-worker chunks;
  each worker runs the full Pippenger bucket method on its chunk and the
  partial sums are folded with one Jacobian addition per chunk.  (Points
  are sharded rather than Pippenger windows: window sharding would ship
  the whole input to every worker, and in CPython the pickling cost of
  the duplicated inputs dominates the saved additions.)
- **NTT batches**: independent transforms — e.g. the prover's 6 live
  coset FFTs of round 3 — map one job per worker task.  Per-process
  :class:`~repro.field.ntt.Domain` caches mean twiddle tables are built
  once per worker, not once per job.
- **batch inversion**: Montgomery's trick is sequential within a chain,
  so long inputs are split into independent chains, one per worker.

Small inputs fall back to the serial kernels (fork/pickle overhead would
swamp the win); the thresholds are constructor arguments so tests can
force the parallel paths.  All outputs are bit-identical to
:class:`~repro.backend.serial.SerialEngine` by construction.

The overrides are the internal ``_ntt_batch`` / ``_msm_jac`` /
``_msm_jac_g2`` / ``_batch_inverse`` dispatch targets — telemetry is
recorded by the public wrappers in the base class, in this (parent)
process, so a parallel run reports exactly the same kernel metrics as a
serial run of the same workload.  (Worker-local state such as the
per-process NTT-plan cache is invisible to the parent's counters.)
"""

from __future__ import annotations

import multiprocessing
import os

from repro.backend.engine import Engine, apply_ntt_job
from repro.curve.g1 import jac_add
from repro.curve.g2 import jac2_add
from repro.curve.msm import msm_g2_jacobian, msm_jacobian
from repro.errors import BackendError, FieldError
from repro.field.fr import MODULUS as _R, batch_inverse as _fr_batch_inverse


def _msm_chunk_g1(args: tuple) -> tuple:
    points, scalars = args
    return msm_jacobian(points, scalars)


def _msm_chunk_g2(args: tuple) -> tuple:
    points, scalars = args
    return msm_g2_jacobian(points, scalars)


def _batch_inverse_chunk(values: list[int]) -> list[int]:
    return _fr_batch_inverse(values)


def _chunk(seq: list, pieces: int) -> list[list]:
    """Split ``seq`` into at most ``pieces`` contiguous, balanced chunks."""
    pieces = max(1, min(pieces, len(seq)))
    size, extra = divmod(len(seq), pieces)
    out = []
    start = 0
    for i in range(pieces):
        end = start + size + (1 if i < extra else 0)
        out.append(seq[start:end])
        start = end
    return out


class ParallelEngine(Engine):
    """Engine that chunks MSMs, NTT batches and inversions across workers."""

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        min_msm_points: int = 128,
        min_ntt_jobs: int = 2,
        min_ntt_size: int = 256,
        min_inverse_size: int = 8192,
    ):
        super().__init__()
        if workers is None:
            env = os.environ.get("REPRO_WORKERS")
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    raise BackendError(
                        "REPRO_WORKERS must be an integer, got %r" % env
                    ) from None
            else:
                workers = os.cpu_count() or 1
        self.workers = max(1, workers)
        self.min_msm_points = min_msm_points
        self.min_ntt_jobs = min_ntt_jobs
        self.min_ntt_size = min_ntt_size
        self.min_inverse_size = min_inverse_size
        self._pool = None

    # ------------------------------------------------------------ pool mgmt

    def _get_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = ctx.Pool(self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- kernels

    def _use_pool(self, n_items: int, threshold: int) -> bool:
        return self.workers > 1 and n_items >= threshold

    def _ntt_batch(self, jobs: list[tuple]) -> list[list[int]]:
        big_jobs = sum(1 for job in jobs if job[1] >= self.min_ntt_size)
        if not self._use_pool(big_jobs, self.min_ntt_jobs):
            return [apply_ntt_job(job) for job in jobs]
        return self._get_pool().map(apply_ntt_job, jobs)

    def _msm_jac(self, points: list[tuple], scalars: list[int]) -> tuple:
        if not self._use_pool(len(points), self.min_msm_points):
            return msm_jacobian(points, scalars)
        chunks = list(
            zip(_chunk(list(points), self.workers), _chunk(list(scalars), self.workers))
        )
        partials = self._get_pool().map(_msm_chunk_g1, chunks)
        result = partials[0]
        for part in partials[1:]:
            result = jac_add(result, part)
        return result

    def _msm_jac_g2(self, points: list[tuple], scalars: list[int]) -> tuple:
        if not self._use_pool(len(points), self.min_msm_points):
            return msm_g2_jacobian(points, scalars)
        chunks = list(
            zip(_chunk(list(points), self.workers), _chunk(list(scalars), self.workers))
        )
        partials = self._get_pool().map(_msm_chunk_g2, chunks)
        result = partials[0]
        for part in partials[1:]:
            result = jac2_add(result, part)
        return result

    def _batch_inverse(self, values: list[int]) -> list[int]:
        if not self._use_pool(len(values), self.min_inverse_size):
            return _fr_batch_inverse(values)
        # Surface the zero-element error with its *global* index before
        # sharding, preserving the serial error contract.
        for i, v in enumerate(values):
            if v % _R == 0:
                raise FieldError("batch inverse of zero at index %d" % i)
        chunks = _chunk(list(values), self.workers)
        parts = self._get_pool().map(_batch_inverse_chunk, chunks)
        out: list[int] = []
        for part in parts:
            out.extend(part)
        return out
