"""The serial compute engine: every kernel runs in-process, in order.

:class:`SerialEngine` is the reference implementation — it *is* the base
:class:`~repro.backend.engine.Engine` behaviour under its canonical name.
It exists as a distinct class so backend selection, ``repr`` output and
equivalence tests can name the serial strategy explicitly.
"""

from __future__ import annotations

from repro.backend.engine import Engine


class SerialEngine(Engine):
    """Single-process engine; the default backend."""

    name = "serial"
