"""Shared-memory segment lifecycle for the zero-pickle parallel data plane.

``ParallelEngine`` used to pickle every point and scalar list into each
worker task.  With the contiguous representation
(:mod:`repro.field.frvec`), an MSM/NTT input is one flat byte buffer, so
it can live in a ``multiprocessing.shared_memory`` segment: the parent
packs once, workers attach by name and read their slice zero-copy, and
task payloads shrink to ``(segment name, offset, count)`` triples.

Ownership rules (see ``docs/data_plane.md`` for the full contract):

- The **parent** (engine) process creates every segment and is the only
  process that ever unlinks it.  Scratch segments (per-call scalars, NTT
  values, results) are unlinked in a ``finally`` as soon as the call
  completes — including on worker crash/abort paths.  Pinned segments
  (per-SRS / per-proving-key point tables) live until the engine is
  closed; :func:`cleanup_owned` runs at interpreter exit as a backstop.
- **Workers** only ever attach, read/write, and close.  Attachments are
  cached per process (keyed by segment name — names are unique per boot,
  so a cached attachment can never alias a new segment).  Workers are
  forked, so their resource-tracker registrations land in the *parent's*
  tracker and dedup against the owner's entry; see
  :func:`attach_segment` for why workers must never unregister.

Point cells are 64 bytes (x || y, little-endian, ``z = 1`` implied);
the all-zero cell encodes the point at infinity — ``(0, 0)`` is not on
``y^2 = x^3 + 3``, so the sentinel cannot collide with a real point.
Scalar cells are the 32-byte :mod:`repro.field.frvec` encoding.

Protocol modules must not import this module; the compute engine owns
the representation (zklint ENG-001).
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory

from repro.curve.g1 import JAC_INF

_POINT_BYTES = 64
_COORD_BYTES = 32

#: Segments created (and therefore owned) by this process, by name.
_owned: dict[str, shared_memory.SharedMemory] = {}

#: Segments this process has attached to (worker side), by name.
_attached: dict[str, shared_memory.SharedMemory] = {}


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create an owned segment of at least ``nbytes`` (never zero) bytes."""
    seg = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    _owned[seg.name] = seg
    return seg


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment (worker side), cached per process.

    CPython 3.11 registers attaches with the resource tracker exactly
    like creates; because pool workers are *forked* they share the
    parent's tracker process, whose per-name cache is a set — the
    worker's register is a dedup no-op and the parent's eventual
    unlink/unregister stays balanced.  (A worker must therefore never
    unregister: that would delete the parent's registration.)
    """
    seg = _owned.get(name) or _attached.get(name)
    if seg is not None:
        return seg
    seg = shared_memory.SharedMemory(name=name)
    _attached[name] = seg
    return seg


def release_segment(seg: shared_memory.SharedMemory) -> None:
    """Close and (if owned by this process) unlink ``seg``.  Idempotent."""
    owned = _owned.pop(seg.name, None) is not None
    _attached.pop(seg.name, None)
    try:
        seg.close()
    except Exception:  # pragma: no cover - double close on exotic teardown
        pass
    if owned:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def cleanup_owned() -> None:
    """Unlink every segment this process still owns (crash backstop)."""
    for seg in list(_owned.values()):
        release_segment(seg)


def detach_all() -> None:
    """Close every cached worker-side attachment (worker teardown)."""
    for seg in list(_attached.values()):
        _attached.pop(seg.name, None)
        try:
            seg.close()
        except Exception:  # pragma: no cover
            pass


def owned_names() -> list[str]:
    """Names of segments currently owned by this process (for tests)."""
    return sorted(_owned)


def segment_exists(name: str) -> bool:
    """True if a segment ``name`` still exists system-wide (for tests).

    The probe attach's tracker registration is a dedup no-op against the
    owner's entry (shared tracker under fork), so probing does not
    perturb cleanup accounting.
    """
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


atexit.register(cleanup_owned)


# ------------------------------------------------------------------ points


def pack_points(points: list[tuple]) -> bytearray:
    """Pack normalised (``z in (0, 1)``) Jacobian points into 64-byte cells.

    Infinity (``z == 0``) packs as the all-zero cell.
    """
    out = bytearray(_POINT_BYTES * len(points))
    pos = 0
    for p in points:
        if p[2] != 0:
            out[pos : pos + _COORD_BYTES] = p[0].to_bytes(_COORD_BYTES, "little")
            out[pos + _COORD_BYTES : pos + _POINT_BYTES] = p[1].to_bytes(
                _COORD_BYTES, "little"
            )
        pos += _POINT_BYTES
    return out


def unpack_points(buf, start: int = 0, count: int | None = None) -> list[tuple]:
    """Unpack 64-byte point cells into ``z = 1`` Jacobian tuples."""
    view = memoryview(buf)
    if count is None:
        count = (len(view) - start * _POINT_BYTES) // _POINT_BYTES
    out = []
    pos = start * _POINT_BYTES
    for _ in range(count):
        x = int.from_bytes(view[pos : pos + _COORD_BYTES], "little")
        y = int.from_bytes(view[pos + _COORD_BYTES : pos + _POINT_BYTES], "little")
        out.append((x, y, 1) if x or y else JAC_INF)
        pos += _POINT_BYTES
    return out


POINT_BYTES = _POINT_BYTES
