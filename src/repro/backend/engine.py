"""The compute-engine abstraction: one interface over every hot kernel.

An :class:`Engine` owns the arithmetic substrate the protocol layers run
on — NTT plans, multi-scalar multiplication, batched field inversion,
fixed-base scalar multiplication — together with the caches that amortise
repeated work across proofs:

- **NTT plans**: twiddle/inverse-twiddle tables per domain size (shared
  with :class:`repro.field.ntt.Domain`'s global cache, so plans built by
  one engine are visible to all);
- **SRS Jacobian views**: the one-time conversion of an SRS's affine G1
  powers to Jacobian tuples, shared by every KZG commitment under that
  SRS;
- **fixed-base windowed tables** for the G1/G2 generators (and any other
  repeated base), used by SRS generation and Groth16 setup;
- **coset-evaluation cache**: an LRU of coset-NTT outputs for polynomials
  that are fixed per proving key (Plonk selectors, permutation columns
  and the first Lagrange basis polynomial — 9 polynomials in all), so
  the second proof onward skips 9 of the prover's 15 big FFTs.  (The
  telemetry counters are the source of truth for that number:
  ``tests/test_telemetry.py`` asserts 9 ``coset_eval`` cache hits and 6
  live coset FFTs per warm proof.)

Protocol code never touches raw kernels directly: it asks its engine.
The base class implements every kernel serially; subclasses override the
internal batch entry points (:meth:`_ntt_batch`, :meth:`_msm_jac`, ...)
to change the execution strategy — the public methods are thin dispatch
wrappers that record telemetry (call counts, input sizes, cache hit/miss
outcomes, and wall-clock via ``telemetry.kernel_timer``) when
``REPRO_TELEMETRY`` enables it, so every backend reports identical
counter metrics for identical work.  The count-AND-time pairing is the
ENG-001 lint contract: a kernel wrapper that counts but never times (or
vice versa) is a finding.  See
:class:`repro.backend.parallel.ParallelEngine` for the multiprocessing
implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro import telemetry as _tel
from repro.errors import BackendError
from repro.curve.g1 import (
    G1,
    JAC_INF,
    jac_add,
    jac_batch_normalize,
    jac_double,
)
from repro.curve.g2 import (
    G2,
    JAC_INF as JAC2_INF,
    jac2_add,
    jac2_batch_normalize,
    jac2_double,
)
from repro import substrate
from repro.curve.msm import (
    FIXED_WINDOW_MAX,
    FIXED_WINDOW_MIN,
    build_window_tables,
    fixed_window_c,
    msm_fixed_window,
    msm_g2_jacobian,
    msm_jacobian,
)
from repro.curve.pairing import (
    PreparedG2,
    final_exponentiation as _final_exponentiation,
    miller_loop_prepared as _miller_loop_prepared,
    pairing_check as _pairing_check_prepared,
    prepare_g2,
)
from repro.field.fr import MODULUS as _R, batch_inverse as _fr_batch_inverse
from repro.field.ntt import COSET_SHIFT, Domain

#: Scalars are at most 254 bits on BN254.
_SCALAR_BITS = 254

#: Window width for fixed-base tables: 43 windows of 63 entries each —
#: table construction costs ~2.7k additions, each multiplication then
#: costs at most 43 mixed additions (vs ~380 ops for double-and-add).
_FB_WINDOW = 6


def _record_ntt(kind: str, n: int) -> None:
    """Count one NTT kernel invocation of size ``n`` (metrics level)."""
    _tel.counter("engine.ntt.calls", kind=kind).inc()
    _tel.histogram("engine.ntt.size", kind=kind).observe(n)


def _record_cache(cache: str, hit: bool) -> None:
    """Count one lookup outcome for one of the engine caches."""
    _tel.counter("engine.cache.hits" if hit else "engine.cache.misses", cache=cache).inc()


def apply_ntt_job(job: tuple) -> list[int]:
    """Execute one NTT job ``(kind, n, values, shift)``.

    Module-level so multiprocessing workers can run jobs directly; the
    per-process :class:`Domain` cache makes repeated sizes cheap.
    """
    kind, n, values, shift = job
    dom = Domain.get(n)
    if kind == "fft":
        return dom.fft(values)
    if kind == "ifft":
        return dom.ifft(values)
    if kind == "coset_fft":
        return dom.coset_fft(values, shift)
    if kind == "coset_ifft":
        return dom.coset_ifft(values, shift)
    raise BackendError("unknown NTT job kind %r" % (kind,))


class _FixedBaseTable:
    """Windowed precomputation for repeated scalar multiples of one base.

    ``rows[j][d-1]`` holds ``d * 2**(j*w) * P`` with every entry batch-
    normalised to ``z = 1``, so a multiplication is at most
    ``ceil(254/w)`` mixed additions and no doublings.
    """

    __slots__ = ("window", "rows", "_add", "_inf")

    def __init__(
        self,
        jac_point: tuple,
        add: Callable[[tuple, tuple], tuple],
        double: Callable[[tuple], tuple],
        normalize: Callable[[list[tuple]], list[tuple]],
        inf: tuple,
        window: int = _FB_WINDOW,
    ) -> None:
        self.window = window
        self._add = add
        self._inf = inf
        num_windows = (_SCALAR_BITS + window - 1) // window
        row_len = (1 << window) - 1
        flat = []
        base = jac_point
        for _ in range(num_windows):
            cur = base
            flat.append(cur)
            for _ in range(row_len - 1):
                cur = add(cur, base)
                flat.append(cur)
            for _ in range(window):
                base = double(base)
        flat = normalize(flat)
        self.rows = [flat[j * row_len : (j + 1) * row_len] for j in range(num_windows)]

    def mul(self, k: int) -> tuple:
        """Return ``k * P`` as a Jacobian tuple (``k`` already reduced)."""
        acc = self._inf
        add = self._add
        mask = (1 << self.window) - 1
        j = 0
        while k:
            d = k & mask
            if d:
                acc = add(acc, self.rows[j][d - 1])
            k >>= self.window
            j += 1
        return acc


class Engine:
    """Serial reference implementation of the compute-backend interface.

    Subclasses override the batch kernels to change execution strategy;
    every override must be *observationally identical* — the engine-
    equivalence property tests enforce bit-identical outputs.
    """

    name = "serial"

    def __init__(self) -> None:
        self._srs_jac: dict[int, tuple] = {}
        self._fixed_jac: dict[int, tuple] = {}
        #: id(owner) -> (owner, window width c, per-point window tables).
        self._window_tables: dict[int, tuple[Any, int, list[list[tuple]]]] = {}
        self._fb_tables: dict[tuple, _FixedBaseTable] = {}
        self._eval_cache: OrderedDict = OrderedDict()
        self.eval_cache_capacity = 64
        self._prepared_g2_cache: OrderedDict = OrderedDict()
        self.prepared_g2_capacity = 64

    # ------------------------------------------------------------------ NTT

    def domain(self, n: int) -> Domain:
        """Return the (cached) NTT plan for a size-``n`` domain."""
        return Domain.get(n)

    def ntt(self, coeffs: list[int], n: int) -> list[int]:
        """Evaluate ``coeffs`` over the size-``n`` domain."""
        if not _tel.metrics_enabled():
            return Domain.get(n).fft(coeffs)
        _record_ntt("fft", n)
        with _tel.kernel_timer("ntt"):
            return Domain.get(n).fft(coeffs)

    def intt(self, evals: list[int]) -> list[int]:
        """Interpolate coefficients from evaluations (n = len(evals))."""
        if not _tel.metrics_enabled():
            return Domain.get(len(evals)).ifft(evals)
        _record_ntt("ifft", len(evals))
        with _tel.kernel_timer("intt"):
            return Domain.get(len(evals)).ifft(evals)

    def coset_ntt(self, coeffs: list[int], n: int, shift: int = COSET_SHIFT) -> list[int]:
        """Evaluate ``coeffs`` over the coset ``shift * H`` of size ``n``."""
        if not _tel.metrics_enabled():
            return Domain.get(n).coset_fft(coeffs, shift)
        _record_ntt("coset_fft", n)
        with _tel.kernel_timer("coset_ntt"):
            return Domain.get(n).coset_fft(coeffs, shift)

    def coset_intt(self, evals: list[int], shift: int = COSET_SHIFT) -> list[int]:
        """Interpolate from coset evaluations (n = len(evals))."""
        if not _tel.metrics_enabled():
            return Domain.get(len(evals)).coset_ifft(evals, shift)
        _record_ntt("coset_ifft", len(evals))
        with _tel.kernel_timer("coset_intt"):
            return Domain.get(len(evals)).coset_ifft(evals, shift)

    def ntt_batch(self, jobs: list[tuple]) -> list[list[int]]:
        """Run many independent NTT jobs ``(kind, n, values, shift)``.

        The serial engine loops; parallel engines fan jobs out to
        workers.  Job order is preserved in the result list.  Jobs are
        recorded at this dispatch site — in the parent process — so
        metric totals are identical whether the transforms then run
        in-process or on pool workers.
        """
        if not _tel.metrics_enabled():
            return self._ntt_batch(jobs)
        for kind, n, _, _ in jobs:
            _record_ntt(kind, n)
        with _tel.kernel_timer("ntt_batch"):
            return self._ntt_batch(jobs)

    def _ntt_batch(self, jobs: list[tuple]) -> list[list[int]]:
        return [apply_ntt_job(job) for job in jobs]

    # -------------------------------------------------------------- caching

    def _eval_cache_get(self, key: tuple, owner: Any) -> list[int] | None:
        hit = self._eval_cache.get(key)
        if hit is not None and hit[0] is owner:
            self._eval_cache.move_to_end(key)
            return hit[1]
        return None

    def _eval_cache_put(self, key: tuple, owner: Any, value: list[int]) -> None:
        self._eval_cache[key] = (owner, value)
        self._eval_cache.move_to_end(key)
        while len(self._eval_cache) > self.eval_cache_capacity:
            self._eval_cache.popitem(last=False)

    def coset_ntt_cached(
        self, owner: Any, tag: str, coeffs: list[int], n: int, shift: int = COSET_SHIFT
    ) -> list[int]:
        """Coset-NTT with memoisation for per-key-fixed polynomials.

        ``owner`` anchors the cache entry's lifetime (typically the
        proving key); the entry is valid only while the exact same owner
        object is passed, which makes ``id()`` reuse after garbage
        collection harmless.  Entries are evicted LRU.
        """
        key = ("coset", id(owner), tag, n, shift)
        cached = self._eval_cache_get(key, owner)
        if _tel.metrics_enabled():
            _record_cache("coset_eval", cached is not None)
        if cached is None:
            if _tel.metrics_enabled():
                _record_ntt("coset_fft", n)  # the miss runs a real kernel
            cached = Domain.get(n).coset_fft(list(coeffs), shift)
            self._eval_cache_put(key, owner, cached)
        return cached

    def coset_points(self, n: int, shift: int = COSET_SHIFT) -> list[int]:
        """The coset ``[shift * omega**i]`` of the size-``n`` domain, cached."""
        key = ("coset_points", n, shift)
        cached = self._eval_cache_get(key, None)
        if _tel.metrics_enabled():
            _record_cache("coset_points", cached is not None)
        if cached is None:
            cached = [shift * w % _R for w in Domain.get(n).elements]
            self._eval_cache_put(key, None, cached)
        return cached

    def srs_g1_jacobian(self, srs: Any) -> tuple:
        """The SRS's G1 powers as Jacobian tuples, converted exactly once.

        Cached per SRS object identity for the lifetime of the SRS (the
        entry pins the SRS, so ``id`` reuse cannot alias).
        """
        key = id(srs)
        hit = self._srs_jac.get(key)
        if hit is not None and hit[0] is srs:
            if _tel.metrics_enabled():
                _record_cache("srs_jacobian", True)
            return hit[1]
        if _tel.metrics_enabled():
            _record_cache("srs_jacobian", False)
        jac = tuple(p.to_jacobian() for p in srs.g1_powers)
        self._srs_jac[key] = (srs, jac)
        return jac

    # ------------------------------------------------------------------ MSM

    def msm_jac(self, points: list[tuple], scalars: list[int]) -> tuple:
        """MSM over G1 Jacobian tuples; returns a Jacobian tuple."""
        if not _tel.metrics_enabled():
            return self._msm_jac(points, scalars)
        _tel.counter("engine.msm.calls", group="g1").inc()
        _tel.histogram("engine.msm.points", group="g1").observe(len(points))
        with _tel.kernel_timer("msm_jac"):
            return self._msm_jac(points, scalars)

    def _msm_jac(self, points: list[tuple], scalars: list[int]) -> tuple:
        return msm_jacobian(points, scalars)

    def msm_jac_g2(self, points: list[tuple], scalars: list[int]) -> tuple:
        """MSM over G2 Jacobian tuples; returns a Jacobian tuple."""
        if not _tel.metrics_enabled():
            return self._msm_jac_g2(points, scalars)
        _tel.counter("engine.msm.calls", group="g2").inc()
        _tel.histogram("engine.msm.points", group="g2").observe(len(points))
        with _tel.kernel_timer("msm_jac_g2"):
            return self._msm_jac_g2(points, scalars)

    def _msm_jac_g2(self, points: list[tuple], scalars: list[int]) -> tuple:
        return msm_g2_jacobian(points, scalars)

    def msm_g1(self, points: list[G1], scalars: list[int]) -> G1:
        """MSM over affine G1 points; returns an affine point."""
        jac = self.msm_jac([p.to_jacobian() for p in points], [int(s) for s in scalars])
        return G1.from_jacobian(jac)

    def msm_g2(self, points: list[G2], scalars: list[int]) -> G2:
        """MSM over affine G2 points; returns an affine point."""
        jac = self.msm_jac_g2([p.to_jacobian() for p in points], [int(s) for s in scalars])
        return G2.from_jacobian(jac)

    def msm_srs(self, srs: Any, scalars: list[int]) -> tuple:
        """MSM of the first ``len(scalars)`` SRS G1 powers; Jacobian result.

        The KZG commit hot path.  The points resolve through the cached
        Jacobian view (:meth:`srs_g1_jacobian`), so the caller never
        copies the point list; backends may additionally pin a packed
        shared-memory image of the SRS keyed by the same identity, which
        makes the per-call worker payload just the scalars.
        """
        if not _tel.metrics_enabled():
            return self._msm_srs(srs, [int(s) for s in scalars])
        _tel.counter("engine.msm.calls", group="g1").inc()
        _tel.histogram("engine.msm.points", group="g1").observe(len(scalars))
        with _tel.kernel_timer("msm_srs"):
            return self._msm_srs(srs, [int(s) for s in scalars])

    def _msm_srs(self, srs: Any, scalars: list[int]) -> tuple:
        points = self.srs_g1_jacobian(srs)
        if len(scalars) > len(points):
            raise BackendError(
                "msm_srs: %d scalars but SRS has %d G1 powers" % (len(scalars), len(points))
            )
        fixed = self._window_msm(srs, points, scalars)
        if fixed is not None:
            return fixed
        return self._msm_jac(list(points[: len(scalars)]), scalars)

    def _window_msm(self, owner: Any, points: tuple, scalars: list[int]) -> tuple | None:
        """Fixed-base single-window MSM against cached precomputed tables.

        The warm-proof fast path for :meth:`msm_srs` / :meth:`msm_g1_fixed`:
        the owner's point table is fixed across proofs, so the window
        shifts ``2^(w*c) * P_i`` are computed once (first proof) and every
        later MSM collapses to a single bucket pass.  Returns ``None``
        when the path does not apply (reference substrate, or a size
        outside the table bounds) — callers fall back to the generic MSM.
        Tables are pinned by owner identity like the Jacobian caches and
        extended in place when a longer prefix is first requested.
        """
        n = len(scalars)
        if not substrate.fast_enabled() or not FIXED_WINDOW_MIN <= n <= FIXED_WINDOW_MAX:
            return None
        key = id(owner)
        hit = self._window_tables.get(key)
        if hit is not None and hit[0] is owner:
            _, c, tables = hit
            if _tel.metrics_enabled():
                _record_cache("msm_window", len(tables) >= n)
            if len(tables) < n:
                tables.extend(build_window_tables(list(points[len(tables) : n]), c))
        else:
            if _tel.metrics_enabled():
                _record_cache("msm_window", False)
            c = fixed_window_c(n)
            tables = build_window_tables(list(points[:n]), c)
            self._window_tables[key] = (owner, c, tables)
        return msm_fixed_window(tables, c, scalars)

    def _fixed_jacobian(self, table: Any) -> tuple:
        """Jacobian view of a fixed affine point table, cached by identity.

        Same pinning contract as :meth:`srs_g1_jacobian`: the entry
        holds the table alive, so ``id`` reuse cannot alias.  Groth16
        proving-key query tables hit this every proof.
        """
        key = id(table)
        hit = self._fixed_jac.get(key)
        if hit is not None and hit[0] is table:
            if _tel.metrics_enabled():
                _record_cache("msm_table", True)
            return hit[1]
        if _tel.metrics_enabled():
            _record_cache("msm_table", False)
        jac = tuple(p.to_jacobian() for p in table)
        self._fixed_jac[key] = (table, jac)
        return jac

    def msm_g1_fixed(self, points: Any, scalars: list[int]) -> G1:
        """MSM over a fixed affine G1 table with prefix semantics.

        ``points`` is a sequence reused across proofs (Groth16 query
        tables); only the first ``len(scalars)`` entries are combined.
        The affine->Jacobian conversion is cached per table identity and
        shared-memory backends pin the packed image, so warm proofs ship
        no points at all.
        """
        if len(scalars) > len(points):
            raise BackendError(
                "msm_g1_fixed: %d scalars but table has %d points"
                % (len(scalars), len(points))
            )
        if not _tel.metrics_enabled():
            return G1.from_jacobian(self._msm_g1_fixed(points, [int(s) for s in scalars]))
        _tel.counter("engine.msm.calls", group="g1").inc()
        _tel.histogram("engine.msm.points", group="g1").observe(len(scalars))
        with _tel.kernel_timer("msm_g1_fixed"):
            return G1.from_jacobian(self._msm_g1_fixed(points, [int(s) for s in scalars]))

    def _msm_g1_fixed(self, points: Any, scalars: list[int]) -> tuple:
        jac = self._fixed_jacobian(points)
        fixed = self._window_msm(points, jac, scalars)
        if fixed is not None:
            return fixed
        return self._msm_jac(list(jac[: len(scalars)]), scalars)

    # ----------------------------------------------------------- fixed base

    def _fb_table(self, base: "G1 | G2") -> _FixedBaseTable:
        if isinstance(base, G1):
            key = ("g1", base.x, base.y)
            table = self._fb_tables.get(key)
            if _tel.metrics_enabled():
                _record_cache("fixed_base", table is not None)
            if table is None:
                table = _FixedBaseTable(
                    base.to_jacobian(), jac_add, jac_double, jac_batch_normalize, JAC_INF
                )
                self._fb_tables[key] = table
            return table
        if isinstance(base, G2):
            key = ("g2", base.x, base.y)
            table = self._fb_tables.get(key)
            if _tel.metrics_enabled():
                _record_cache("fixed_base", table is not None)
            if table is None:
                table = _FixedBaseTable(
                    base.to_jacobian(), jac2_add, jac2_double, jac2_batch_normalize, JAC2_INF
                )
                self._fb_tables[key] = table
            return table
        raise BackendError("fixed-base multiplication expects a G1 or G2 point")

    def fixed_base_mul_jac(self, base: "G1 | G2", scalar: int) -> tuple:
        """``scalar * base`` as a Jacobian tuple via a cached window table.

        Callers doing many multiples of the same base should use this and
        batch-convert to affine at the end.
        """
        k = int(scalar) % _R
        if not _tel.metrics_enabled():
            if k == 0 or getattr(base, "inf", False):
                return JAC_INF if isinstance(base, G1) else JAC2_INF
            return self._fb_table(base).mul(k)
        _tel.counter(
            "engine.fixed_base.calls", group="g1" if isinstance(base, G1) else "g2"
        ).inc()
        with _tel.kernel_timer("fixed_base_mul_jac"):
            if k == 0 or getattr(base, "inf", False):
                return JAC_INF if isinstance(base, G1) else JAC2_INF
            return self._fb_table(base).mul(k)

    def fixed_base_mul(self, base: "G1 | G2", scalar: int) -> "G1 | G2":
        """``scalar * base`` for a repeated base point (G1 or G2)."""
        jac = self.fixed_base_mul_jac(base, scalar)
        if isinstance(base, G1):
            return G1.from_jacobian(jac)
        return G2.from_jacobian(jac)

    # -------------------------------------------------------------- pairing

    def prepared_g2(self, q_pt: G2) -> PreparedG2:
        """The Miller-loop line coefficients of ``q_pt``, cached LRU.

        Preparing a G2 point costs the entire G2-side ate loop (~64
        projective doublings in F_q2); verification keys and SRS points
        are pairing inputs over and over, so the cache turns every
        pairing after the first into G1-side-only work.  Keyed by affine
        coordinates, so equal points share an entry across SRS/VK
        objects.
        """
        key = q_pt.x + q_pt.y if not q_pt.inf else None
        prep = self._prepared_g2_cache.get(key)
        if _tel.metrics_enabled():
            _record_cache("prepared_g2", prep is not None)
        if prep is None:
            prep = prepare_g2(q_pt)
            self._prepared_g2_cache[key] = prep
            while len(self._prepared_g2_cache) > self.prepared_g2_capacity:
                self._prepared_g2_cache.popitem(last=False)
        else:
            self._prepared_g2_cache.move_to_end(key)
        return prep

    def pairing(self, p_pt: G1, q_pt: "G2 | PreparedG2") -> tuple:
        """The full pairing e(P, Q) as a GT (F_q12) element.

        Protocol code computing a pairing *value* (e.g. Groth16's setup
        constant e(alpha, beta)) must come through here rather than
        calling :func:`repro.curve.pairing.pairing` directly: the G2
        side resolves through the :meth:`prepared_g2` LRU and the call
        is counted, so accounting stays truthful across backends.  For
        boolean product checks prefer :meth:`pairing_check`, which
        shares one final exponentiation across all pairs.
        """
        if not _tel.metrics_enabled():
            prep = q_pt if isinstance(q_pt, PreparedG2) else self.prepared_g2(q_pt)
            return self._pairing(p_pt, prep)
        _tel.counter("engine.pairing.calls", kind="single").inc()
        prep = q_pt if isinstance(q_pt, PreparedG2) else self.prepared_g2(q_pt)
        with _tel.kernel_timer("pairing"):
            return self._pairing(p_pt, prep)

    def _pairing(self, p_pt: G1, prep: PreparedG2) -> tuple:
        return _final_exponentiation(_miller_loop_prepared(prep, p_pt))

    def pairing_check(self, pairs: list, target: tuple | None = None) -> bool:
        """Product-of-pairings check: prod e(P_i, Q_i) == target (or 1).

        Each pair is ``(G1, G2 | PreparedG2)``; bare G2 points are
        resolved through the :meth:`prepared_g2` cache before dispatch.
        One Miller loop per pair, a *single* shared final
        exponentiation.  ``target`` lets callers compare against a
        precomputed GT constant (e.g. Groth16's e(alpha, beta)) instead
        of folding it into the product.
        """
        prepared = [
            (p, q if isinstance(q, PreparedG2) else self.prepared_g2(q))
            for p, q in pairs
        ]
        if not _tel.metrics_enabled():
            return self._pairing_check(prepared, target)
        _tel.counter("engine.pairing.calls").inc()
        _tel.histogram("engine.pairing.pairs").observe(len(pairs))
        with _tel.kernel_timer("pairing_check"):
            return self._pairing_check(prepared, target)

    def _pairing_check(self, pairs: list, target: tuple | None) -> bool:
        if target is None:
            return _pairing_check_prepared(pairs)
        return _pairing_check_prepared(pairs, target)

    # ---------------------------------------------------------------- field

    def batch_inverse(self, values: list[int]) -> list[int]:
        """Invert many scalar-field elements (Montgomery's trick)."""
        if not _tel.metrics_enabled():
            return self._batch_inverse(values)
        _tel.counter("engine.batch_inverse.calls").inc()
        _tel.histogram("engine.batch_inverse.size").observe(len(values))
        with _tel.kernel_timer("batch_inverse"):
            return self._batch_inverse(values)

    def _batch_inverse(self, values: list[int]) -> list[int]:
        return _fr_batch_inverse(values)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release backend resources (worker pools); caches survive."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<%s backend=%r>" % (type(self).__name__, self.name)
