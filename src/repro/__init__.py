"""ZKDET: a traceable and privacy-preserving data exchange scheme based on
non-fungible tokens and zero-knowledge (Song, Gao, Song, Xiao — ICDCS
2022), reproduced as a complete Python library.

Layer map (bottom-up):

- ``repro.field`` / ``repro.curve`` — BN254 arithmetic and pairing;
- ``repro.kzg`` / ``repro.plonk`` — the universal-setup NIZK;
- ``repro.r1cs`` / ``repro.groth16`` — the ZKCP baseline's SNARK;
- ``repro.primitives`` / ``repro.gadgets`` — MiMC, Poseidon, commitments,
  native and in-circuit;
- ``repro.chain`` / ``repro.contracts`` / ``repro.storage`` — the
  blockchain and storage substrates;
- ``repro.core`` — the ZKDET protocols and marketplace;
- ``repro.apps`` — logistic-regression and transformer proof applications;
- ``repro.costmodel`` — calibrated extrapolation to paper-scale numbers.

Quickstart::

    from repro import SnarkContext, ZKDETMarketplace

    snark = SnarkContext.with_fresh_srs(8208)
    market = ZKDETMarketplace(snark)
    alice = market.register_participant()
    listing = market.publish_dataset(alice, [101, 202])
"""

from repro.core import (
    Aggregation,
    Buyer,
    DataAsset,
    Duplication,
    KeySecureExchange,
    Partition,
    Processing,
    ProvenanceGraph,
    Seller,
    SnarkContext,
    ZKCPExchange,
    ZKDETMarketplace,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregation",
    "Buyer",
    "DataAsset",
    "Duplication",
    "KeySecureExchange",
    "Partition",
    "Processing",
    "ProvenanceGraph",
    "Seller",
    "SnarkContext",
    "ZKCPExchange",
    "ZKDETMarketplace",
    "__version__",
]
