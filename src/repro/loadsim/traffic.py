"""The traffic-mix DSL: what a population of 10^4-10^6 users *does*.

A :class:`TrafficMix` is three integer weights over the operation kinds
the marketplace serves:

- ``mint`` — a seller stores a dataset on the DHT and mints its token;
- ``trade`` — a buyer escrows payment for a token and the exchange runs
  to settlement (or refund) through the hash-locked arbiter;
- ``audit`` — a regulator walks provenance: event-index queries over the
  token's ``Minted``/``Transfer`` history plus a DHT content fetch.

Mixes come from the named presets below or from the spec string DSL
``"mint=2,trade=6,audit=2"`` (``TrafficMix.parse``); weights are
integers so a mix is exactly representable and exactly replayable.

All draws are SHA-256 over ``(seed, tag, sequence)`` — the same
no-``random``-module discipline as :mod:`repro.faults.plan` — so the
operation stream is a pure function of ``(seed, mix, population)``.
User selection is *skewed* by default via the integer product-of-uniforms
trick: multiply two uniform draws and renormalise, which concentrates
mass near index 0 (a triangular popularity distribution: a few hot
accounts, a long cold tail) without any floats.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ReproError

#: Operation kinds, in weight order.
OPS = ("mint", "trade", "audit")


def sim_draw(seed: int, tag: str, sequence: int, bound: int) -> int:
    """Deterministic uniform draw in ``[0, bound)``."""
    if bound <= 0:
        raise ReproError("draw bound must be positive")
    payload = b"zkdet-loadsim:%d:%s:%d" % (seed, tag.encode(), sequence)
    value = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
    return value % bound


def skewed_draw(seed: int, tag: str, sequence: int, bound: int) -> int:
    """Popularity-skewed draw in ``[0, bound)`` (mass near 0).

    The product of two uniforms in ``[0, bound)`` divided by ``bound``
    is triangular-ish toward 0 — hot items get traded and audited far
    more often than the tail, which is what stresses the event index's
    posting lists realistically.
    """
    a = sim_draw(seed, tag + ".a", sequence, bound)
    b = sim_draw(seed, tag + ".b", sequence, bound)
    return (a * b) // bound


@dataclass(frozen=True)
class TrafficMix:
    """Integer operation weights; ``draw_op`` turns them into a stream."""

    name: str
    mint: int
    trade: int
    audit: int

    def __post_init__(self) -> None:
        if min(self.mint, self.trade, self.audit) < 0:
            raise ReproError("traffic weights must be non-negative")
        if self.mint + self.trade + self.audit == 0:
            raise ReproError("a traffic mix needs at least one positive weight")
        if self.trade and not self.mint:
            raise ReproError("a mix that trades must also mint (nothing to trade otherwise)")

    @property
    def total(self) -> int:
        return self.mint + self.trade + self.audit

    def draw_op(self, seed: int, sequence: int) -> str:
        """The ``sequence``-th operation kind under this mix and seed."""
        point = sim_draw(seed, "op." + self.name, sequence, self.total)
        if point < self.mint:
            return "mint"
        if point < self.mint + self.trade:
            return "trade"
        return "audit"

    def spec(self) -> str:
        """The DSL string this mix round-trips through ``parse``."""
        return "mint=%d,trade=%d,audit=%d" % (self.mint, self.trade, self.audit)

    @staticmethod
    def parse(text: str) -> "TrafficMix":
        """A mix from a preset name or a ``"mint=2,trade=6,audit=2"`` spec."""
        name = text.strip().lower()
        if name in MIXES:
            return MIXES[name]
        weights = {"mint": 0, "trade": 0, "audit": 0}
        for part in name.split(","):
            op_name, sep, weight_text = part.partition("=")
            op_name = op_name.strip()
            if not sep or op_name not in weights:
                raise ReproError(
                    "bad traffic mix %r (want a preset out of %s, or 'mint=N,trade=N,audit=N')"
                    % (text, ", ".join(sorted(MIXES)))
                )
            try:
                weights[op_name] = int(weight_text, 0)
            except ValueError:
                raise ReproError("traffic weight %r is not an integer" % weight_text) from None
        return TrafficMix("custom", weights["mint"], weights["trade"], weights["audit"])


#: Named presets.  ``mixed`` is the default soak workload; the heavy
#: variants isolate one subsystem (mint -> DHT+mint path, trade ->
#: mempool+escrow, audit -> event index+provenance reads).
MIXES: dict[str, TrafficMix] = {
    "mixed": TrafficMix("mixed", 3, 4, 3),
    "mint_heavy": TrafficMix("mint_heavy", 6, 3, 1),
    "trade_heavy": TrafficMix("trade_heavy", 2, 6, 2),
    "audit_heavy": TrafficMix("audit_heavy", 2, 2, 6),
}
