"""CLI front-end: ``python -m repro.loadsim``.

Runs one simulation and prints the report; exits 1 if any invariant was
violated (the contract the CI soak job gates on).  The printed
``replay`` line is a complete command to reproduce the run bit for bit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import ReproError
from repro.loadsim.sim import LoadSimulator, SimConfig


def _parse_faults(text: str) -> tuple[str, int]:
    """``profile``, ``profile:seed`` or ``env`` -> (profile, seed)."""
    if text == "env":
        raw = os.environ.get("REPRO_FAULTS", "").strip()
        if not raw:
            return "off", 0
        text = raw if ":" in raw else ("all:" + raw)
    profile, _, seed_text = text.partition(":")
    try:
        seed = int(seed_text, 0) if seed_text else 0
    except ValueError:
        raise ReproError("fault seed %r is not an integer" % seed_text) from None
    return profile.strip() or "off", seed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadsim",
        description="Population-scale ZKDET load/soak simulation.",
    )
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--ops", type=int, default=4_000)
    parser.add_argument("--mix", default="mixed",
                        help="preset name or 'mint=N,trade=N,audit=N'")
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=20220707)
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--mempool", type=int, default=4096, dest="mempool_capacity")
    parser.add_argument("--block-txs", type=int, default=64)
    parser.add_argument("--churn-every", type=int, default=500)
    parser.add_argument("--faults", default="off",
                        help="fault profile, 'profile:seed', or 'env' (read REPRO_FAULTS)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write the full report as JSON to this path")
    args = parser.parse_args(argv)

    profile, fault_seed = _parse_faults(args.faults)
    config = SimConfig(
        users=args.users,
        ops=args.ops,
        mix=args.mix,
        seed=args.seed,
        lanes=args.lanes,
        mempool_capacity=args.mempool_capacity,
        block_txs=args.block_txs,
        churn_every=args.churn_every,
        fault_profile=profile,
        fault_seed=fault_seed,
    )
    report = LoadSimulator(config).run()
    payload = report.to_dict()
    for column in (
        "users", "ops", "mix", "seed", "lanes", "fault_profile", "fault_seed",
        "digest", "tx_per_sec", "mined", "dropped", "trades_started",
        "trades_completed", "refunds", "aborts", "abort_rate",
        "audit_p50_us", "audit_p99_us", "users_materialized", "blocks",
    ):
        print("%-22s %s" % (column, payload[column]))
    print(
        "%-22s python -m repro.loadsim --users %d --ops %d --mix '%s' --seed %d "
        "--lanes %d --faults %s:%d"
        % ("replay", config.users, config.ops, config.mix, config.seed,
           config.lanes, profile, config.resolved_fault_seed())
    )
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if report.violations:
        print("\nINVARIANT VIOLATIONS (%d):" % len(report.violations), file=sys.stderr)
        for violation in report.violations[:20]:
            print("  - %s" % violation, file=sys.stderr)
        return 1
    print("%-22s %s" % ("invariants", "ok (%d checks)" % report.config.ops))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
