"""Population-scale load and soak simulation for the ZKDET stack.

The paper validates its exchange protocol per-exchange; this package
asks the system question: does a marketplace serving 10^4-10^6 users —
minting, trading and auditing data tokens concurrently through a
bounded fee-ordered mempool, multiple block lanes and a churning DHT —
*conserve* everything the protocol promises, continuously, under a
deterministic fault schedule?

- :mod:`repro.loadsim.traffic` — the seeded traffic-mix DSL;
- :mod:`repro.loadsim.population` — lazy user materialisation;
- :mod:`repro.loadsim.sim` — the simulator and its report;
- :mod:`repro.loadsim.invariants` — the whole-run conservation checker.

Run one from the command line (exit code 1 on any violation)::

    PYTHONPATH=src python -m repro.loadsim --users 10000 --ops 4000 \\
        --mix mixed --seed 20220707 --faults all

See ``docs/loadsim.md`` for the DSL, shard/mempool semantics and the
invariant catalogue.
"""

from repro.loadsim.invariants import InvariantChecker
from repro.loadsim.population import Population
from repro.loadsim.sim import LoadSimulator, SimConfig, SimReport, run_sim
from repro.loadsim.traffic import MIXES, OPS, TrafficMix, sim_draw, skewed_draw

__all__ = [
    "InvariantChecker",
    "LoadSimulator",
    "MIXES",
    "OPS",
    "Population",
    "SimConfig",
    "SimReport",
    "TrafficMix",
    "run_sim",
    "sim_draw",
    "skewed_draw",
]
