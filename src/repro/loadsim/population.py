"""Lazy account population: 10^6 users without 10^6 upfront accounts.

A :class:`Population` maps dense user indices ``[0, size)`` to chain
accounts, materialising an account (and its faucet funding) the first
time an index is actually drawn by the traffic stream.  With skewed
user draws most of a million-user population is never touched, so the
simulator's memory and setup cost follow the *active* user count while
invariants still range over the whole nominal population.

The population is also the funding authority: every unit of value on
the chain entered through it, so ``funds_injected`` is the exact
right-hand side of the conservation invariant
``chain.total_balance() == population.funds_injected``.
"""

from __future__ import annotations

from repro.chain import Blockchain
from repro.errors import ReproError


class Population:
    """Dense-indexed, lazily materialised user accounts."""

    def __init__(self, chain: Blockchain, size: int, funds_each: int) -> None:
        if size < 1:
            raise ReproError("population size must be positive")
        if funds_each < 0:
            raise ReproError("per-user funding must be non-negative")
        self.chain = chain
        self.size = size
        self.funds_each = funds_each
        self._accounts: dict[int, str] = {}
        self._index_of: dict[str, int] = {}
        self._injected: dict[str, int] = {}
        #: Total value faucet-ed into existence (accounts created so far
        #: times ``funds_each`` plus any explicit top-ups).
        self.funds_injected = 0

    def __len__(self) -> int:
        return len(self._accounts)

    @property
    def materialized(self) -> int:
        """How many users have actually appeared in the traffic stream."""
        return len(self._accounts)

    def account(self, index: int) -> str:
        """The chain address of user ``index``, creating it on first use."""
        if not 0 <= index < self.size:
            raise ReproError("user index %d outside population [0, %d)" % (index, self.size))
        address = self._accounts.get(index)
        if address is None:
            address = self.chain.create_account(funded=self.funds_each)
            self._accounts[index] = address
            self._index_of[address] = index
            self._injected[address] = self.funds_each
            self.funds_injected += self.funds_each
        return address

    def index_of(self, address: str) -> int | None:
        """The user index behind ``address`` (``None`` for non-users)."""
        return self._index_of.get(address)

    def top_up(self, index: int, amount: int) -> None:
        """Faucet extra funds to a user, keeping the injection ledger right."""
        if amount < 0:
            raise ReproError("top-up must be non-negative")
        address = self.account(index)
        self.chain.faucet(address, amount)
        self._injected[address] += amount
        self.funds_injected += amount

    def addresses(self) -> list[str]:
        """All materialised addresses (stable creation order)."""
        return [self._accounts[i] for i in sorted(self._accounts)]

    def injected_by_address(self) -> dict[str, int]:
        """Per-address injection ledger (for per-lane conservation)."""
        return dict(self._injected)
