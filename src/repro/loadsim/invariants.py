"""Whole-run conservation invariants, checked continuously.

The :class:`InvariantChecker` is an *independent ledger*: it replays the
chain's receipt stream event by event (a cursor makes each check
incremental — receipts are visited once, ever) and rebuilds its own view
of token ownership, open escrows and per-lane value flow.  Each mining
round the rebuilt view is compared against the chain's actual state, so
a conservation break surfaces within one round of the transaction that
caused it, with the whole fault schedule still replayable from the seed.

The catalogue (see ``docs/loadsim.md``):

- **conservation** — every unit of value on chain was injected by the
  population faucet: ``chain.total_balance() == funds_injected``.
- **per-lane conservation** — for every block lane, the balance sum of
  the accounts homed on it equals injected funds plus the net flow the
  *settled* escrow events say crossed lanes, minus what its buyers hold
  in open escrow.  Catches value teleporting between shards.
- **escrow accounting** — the arbiter's balance is exactly the sum of
  open deals; nothing stranded, nothing double-released.
- **no double-spend** — a ``Transfer`` must come from the replayed
  current owner; final token ownership matches the replay exactly.
- **no key release without payment** — an ``Opened`` (key revealed)
  must hit a live ``Locked`` deal, at most once, never after a refund
  (and vice versa).
- **terminal cleanliness** (:meth:`check_final`) — no open deals, empty
  mempool, arbiter balance zero, per-lane hash linkage intact.
"""

from __future__ import annotations

from repro.chain import Blockchain
from repro.loadsim.population import Population


class InvariantChecker:
    """Replays receipts into a shadow ledger and diffs it against state."""

    def __init__(self, chain: Blockchain, token, arbiter, population: Population) -> None:
        self.chain = chain
        self.token = token
        self.arbiter = arbiter
        self.population = population
        self.violations: list[str] = []
        self._cursor = 0  # receipts replayed so far
        self._owner: dict[int, str] = {}  # token_id -> replayed owner
        self._open: dict[int, tuple[str, int]] = {}  # deal_id -> (buyer, amount)
        self._settled: set[int] = set()
        self._refunded: set[int] = set()
        #: Net settled value flow into each lane (Opened credits the
        #: seller's lane, Locked debits the buyer's lane, Refunded pays
        #: the buyer's lane back).
        self._lane_flow: dict[int, int] = {}
        self.checks_run = 0

    # ----- shadow-ledger replay ---------------------------------------------------

    def _violate(self, message: str) -> None:
        self.violations.append(message)

    def _flow(self, address: str, amount: int) -> None:
        lane = self.chain.lane_of(address)
        self._lane_flow[lane] = self._lane_flow.get(lane, 0) + amount

    def _replay_new_receipts(self) -> None:
        receipts = self.chain.receipts
        while self._cursor < len(receipts):
            receipt = receipts[self._cursor]
            self._cursor += 1
            if not receipt.status:
                continue  # reverted transactions emit nothing
            for event in receipt.events:
                self._replay_event(receipt, event)

    def _replay_event(self, receipt, event) -> None:
        name = event.name
        if name == "Minted":
            token_id = event.get("token_id")
            if token_id in self._owner:
                self._violate("token %d minted twice" % token_id)
            self._owner[token_id] = event.get("to")
        elif name == "Transfer":
            token_id = event.get("token_id")
            frm, to = event.get("frm"), event.get("to")
            current = self._owner.get(token_id)
            if current != frm:
                self._violate(
                    "double-spend: token %s transferred by %s but replayed owner is %s"
                    % (token_id, frm, current)
                )
            self._owner[token_id] = to
        elif name == "Burned":
            self._owner.pop(event.get("token_id"), None)
        elif name == "Locked":
            deal_id = event.get("deal_id")
            buyer, amount = event.get("buyer"), event.get("amount")
            if deal_id in self._open or deal_id in self._settled or deal_id in self._refunded:
                self._violate("deal %d locked twice" % deal_id)
                return
            self._open[deal_id] = (buyer, amount)
            self._flow(buyer, -amount)
        elif name == "Opened":
            deal_id = event.get("deal_id")
            deal = self._open.pop(deal_id, None)
            if deal is None:
                self._violate(
                    "key released without payment: deal %s opened but not in open escrow "
                    "(settled=%s refunded=%s)"
                    % (deal_id, deal_id in self._settled, deal_id in self._refunded)
                )
                return
            _buyer, amount = deal
            # The seller is whoever sent the open() transaction; the
            # contract paid them out of the escrowed amount.
            self._flow(receipt.sender, amount)
            self._settled.add(deal_id)
        elif name == "Refunded":
            deal_id = event.get("deal_id")
            deal = self._open.pop(deal_id, None)
            if deal is None:
                self._violate("deal %s refunded but not in open escrow" % deal_id)
                return
            buyer, amount = deal
            self._flow(buyer, amount)
            self._refunded.add(deal_id)

    # ----- the per-round diff -----------------------------------------------------

    def open_escrow_total(self) -> int:
        return sum(amount for _buyer, amount in self._open.values())

    def check_round(self) -> bool:
        """Replay new receipts, then diff the shadow ledger against the
        chain.  Returns ``True`` when no *new* violation was found."""
        before = len(self.violations)
        self._replay_new_receipts()
        self.checks_run += 1

        total = self.chain.total_balance()
        injected = self.population.funds_injected
        if total != injected:
            self._violate(
                "conservation broken: total balance %d != funds injected %d" % (total, injected)
            )

        escrow = self.chain.balance_of(self.arbiter.address)
        expected_escrow = self.open_escrow_total()
        if escrow != expected_escrow:
            self._violate(
                "escrow accounting broken: arbiter holds %d but open deals sum to %d"
                % (escrow, expected_escrow)
            )

        self._check_lane_sums()
        return len(self.violations) == before

    def _check_lane_sums(self) -> None:
        lanes = self.chain.lanes
        injected = [0] * lanes
        actual = [0] * lanes
        for address, amount in self.population.injected_by_address().items():
            lane = self.chain.lane_of(address)
            injected[lane] += amount
            actual[lane] += self.chain.balance_of(address)
        for lane in range(lanes):
            expected = injected[lane] + self._lane_flow.get(lane, 0)
            if actual[lane] != expected:
                self._violate(
                    "lane %d conservation broken: balances sum to %d, expected %d "
                    "(injected %d, net settled flow %d)"
                    % (lane, actual[lane], expected, injected[lane],
                       self._lane_flow.get(lane, 0))
                )

    def check_final(self) -> bool:
        """End-of-run checks: everything per-round, plus terminal state."""
        before = len(self.violations)
        self.check_round()
        if self._open:
            self._violate(
                "stranded escrow: %d deals still open at end of run (e.g. %s)"
                % (len(self._open), sorted(self._open)[:5])
            )
        if self.chain.balance_of(self.arbiter.address) != self.open_escrow_total():
            self._violate("arbiter balance nonzero with no open deals")
        if len(self.chain.mempool) != 0:
            self._violate("mempool not drained: %d transactions left" % len(self.chain.mempool))
        if not self.chain.verify_chain():
            self._violate("per-lane block hash linkage broken")
        for token_id, owner in self._owner.items():
            on_chain = self.chain.call_view(self.token, "owner_of", token_id)
            if on_chain != owner:
                self._violate(
                    "ownership divergence: token %d owned by %s on chain, %s in replay"
                    % (token_id, on_chain, owner)
                )
        return len(self.violations) == before
