"""The population-scale load simulator.

One :class:`LoadSimulator` run drives a seeded operation stream (see
:mod:`repro.loadsim.traffic`) against the full stack: DHT storage with
node churn, the fee-ordered mempool, multi-lane mining, the ERC-721
data-token contract and the hash-locked escrow arbiter — optionally
under a fault profile — while the :class:`InvariantChecker` diffs a
shadow ledger against chain state after every mining round.

Determinism contract: every *decision* (operation kinds, users, prices,
fees, churn, faults) is an integer SHA-256 draw from the run seed, so
two runs with the same :class:`SimConfig` produce byte-identical chains
— :attr:`SimReport.digest` is the proof.  Wall-clock time is measured
(tx/s, query latency percentiles) but never consulted.

Trades are a client-side state machine (lock -> open -> transfer, with
refund as the abort path) advanced only by mined receipts, with bounded
fee-escalating retries against injected drops/reverts.  After the last
operation the run *drains*: faults are uninstalled and mining continues
until the mempool is empty and every trade is terminal, so bounded
client retries plus a clean drain guarantee termination under any
profile — which is why the ``soak`` profile may keep budgets unbounded.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro import faults
from repro.chain import Blockchain, MiningRound, PendingTx
from repro.contracts.arbiter import ZKCPArbiterContract
from repro.contracts.erc721 import DataTokenContract
from repro.errors import (
    EventDelayError,
    MempoolFullError,
    ReproError,
    StorageError,
    TransientError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.loadsim.invariants import InvariantChecker
from repro.loadsim.population import Population
from repro.loadsim.traffic import TrafficMix, sim_draw, skewed_draw
from repro.primitives.hashing import field_hash
from repro.storage.dht import DHTNetwork
from repro.telemetry import ledger as _ledger


@dataclass(frozen=True)
class SimConfig:
    """Everything a run depends on; two equal configs replay identically."""

    users: int = 1_000
    ops: int = 2_000
    mix: str = "mixed"
    seed: int = 20220707
    lanes: int = 4
    mempool_capacity: int = 4096
    block_txs: int = 64  #: per lane per mining round
    ops_per_round: int = 128  #: submissions between mining rounds
    dht_nodes: int = 16
    replication: int = 3
    churn_every: int = 500  #: ops between DHT join/leave events (0 = off)
    repair_every: int = 4  #: churn events between anti-entropy passes (0 = off)
    fault_profile: str = "off"
    fault_seed: int = 0  #: 0 = derive from ``seed``
    fault_epoch_ops: int = 2_000  #: re-seed the injector every N ops (0 = off)
    funds: int = 1_000_000  #: faucet per materialised user
    price_max: int = 1_000
    fee_max: int = 16
    max_client_retries: int = 4
    max_drain_rounds: int = 10_000
    preimage_pool: int = 64  #: distinct hash-lock preimages (Poseidon is slow)
    check_every: int = 1  #: invariant check every N mining rounds

    def resolved_mix(self) -> TrafficMix:
        return TrafficMix.parse(self.mix)

    def resolved_fault_seed(self) -> int:
        return self.fault_seed or self.seed


@dataclass
class SimReport:
    """What one run produced; :meth:`to_dict` is the artifact schema."""

    config: SimConfig
    digest: str = ""
    duration_s: float = 0.0
    mined: int = 0  #: transactions with a receipt (success or revert)
    reverted: int = 0
    dropped: int = 0  #: in-flight losses (fault plane)
    shed: int = 0  #: operations abandoned at admission (mempool full)
    mints: int = 0
    trades_started: int = 0
    trades_completed: int = 0
    refunds: int = 0
    aborts: int = 0  #: trades that died before locking anything
    audits: int = 0
    audit_p50_us: float = 0.0
    audit_p99_us: float = 0.0
    audit_misses: int = 0  #: provenance/content reads that failed all retries
    churn_events: int = 0
    repaired: int = 0  #: replicas added+removed by anti-entropy passes
    mempool_evicted: int = 0
    mempool_rejected: int = 0
    faults_injected: int = 0
    users_materialized: int = 0
    blocks: int = 0
    rounds: int = 0
    violations: list = field(default_factory=list)

    @property
    def tx_per_sec(self) -> float:
        return self.mined / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def abort_rate(self) -> float:
        started = self.trades_started
        return (self.refunds + self.aborts) / started if started else 0.0

    def to_dict(self) -> dict:
        cfg = self.config
        return {
            "schema": "repro.loadsim.report/1",
            "users": cfg.users,
            "ops": cfg.ops,
            "mix": cfg.resolved_mix().spec(),
            "mix_name": cfg.resolved_mix().name,
            "seed": cfg.seed,
            "lanes": cfg.lanes,
            "fault_profile": cfg.fault_profile,
            "fault_seed": cfg.resolved_fault_seed(),
            "digest": self.digest,
            "duration_s": round(self.duration_s, 6),
            "tx_per_sec": round(self.tx_per_sec, 3),
            "mined": self.mined,
            "reverted": self.reverted,
            "dropped": self.dropped,
            "shed": self.shed,
            "mints": self.mints,
            "trades_started": self.trades_started,
            "trades_completed": self.trades_completed,
            "refunds": self.refunds,
            "aborts": self.aborts,
            "abort_rate": round(self.abort_rate, 6),
            "audits": self.audits,
            "audit_p50_us": round(self.audit_p50_us, 3),
            "audit_p99_us": round(self.audit_p99_us, 3),
            "audit_misses": self.audit_misses,
            "churn_events": self.churn_events,
            "repaired": self.repaired,
            "mempool_evicted": self.mempool_evicted,
            "mempool_rejected": self.mempool_rejected,
            "faults_injected": self.faults_injected,
            "users_materialized": self.users_materialized,
            "blocks": self.blocks,
            "rounds": self.rounds,
            "violations": list(self.violations),
        }


class _Trade:
    """Client-side exchange state machine (one buyer/seller/token)."""

    __slots__ = (
        "token_id", "seller", "buyer", "price", "preimage", "lock_hash",
        "deal_id", "state", "retries",
    )

    def __init__(self, token_id, seller, buyer, price, preimage, lock_hash):
        self.token_id = token_id
        self.seller = seller
        self.buyer = buyer
        self.price = price
        self.preimage = preimage
        self.lock_hash = lock_hash
        self.deal_id = None
        self.state = "lock"  # lock -> open -> transfer -> done | refund -> refunded
        self.retries = 0


class LoadSimulator:
    """Drives one seeded run; see the module docstring for the contract."""

    def __init__(self, config: SimConfig) -> None:
        if config.users < 2:
            raise ReproError("a marketplace needs at least two users")
        if config.ops < 1:
            raise ReproError("nothing to simulate with ops < 1")
        self.config = config
        self.mix = config.resolved_mix()
        self.chain = Blockchain(lanes=config.lanes, mempool_capacity=config.mempool_capacity)
        self.population = Population(self.chain, config.users, config.funds)
        self.net = DHTNetwork(
            ["seed-%d" % i for i in range(config.dht_nodes)], replication=config.replication
        )
        operator = self.chain.create_account()
        self.token = DataTokenContract()
        self.arbiter = ZKCPArbiterContract()
        self.chain.deploy(self.token, operator)
        self.chain.deploy(self.arbiter, operator)
        # Deployment receipts predate the checker's shadow ledger on
        # purpose: it replays from receipt 0 anyway.
        self.checker = InvariantChecker(self.chain, self.token, self.arbiter, self.population)
        # Hash-lock pool: Poseidon at ~0.5 ms/hash would dominate a
        # 10^5-op run, so trades draw from a fixed pool of preimages
        # whose client-side hashes are computed once here.  (The
        # contract still hashes on every open(); that cost is the
        # workload, this is just the client not re-deriving constants.)
        self._preimages = [
            sim_draw(config.seed, "preimage", i, 1 << 62) + 1
            for i in range(config.preimage_pool)
        ]
        self._lock_hashes = [field_hash(p) for p in self._preimages]
        #: tx.seq -> (intent kind, payload) for every in-flight submission.
        self._inflight: dict[int, tuple] = {}
        #: Sim-side token registry: token_id -> (owner, uri); owner kept
        #: current from mined Transfer receipts (the *client's* view).
        self._tokens: dict[int, tuple] = {}
        self._token_ids: list[int] = []
        #: Tokens with a live trade: a client never offers a token that
        #: is already mid-exchange (the market is serialised per token,
        #: so a seller cannot over-sell while a transfer is in flight).
        self._busy: set[int] = set()
        self._audit_lat_us: list[float] = []
        self.report = SimReport(config)
        self._round_countdown = config.ops_per_round
        self._draining = False

    # ----- deterministic draws ------------------------------------------------

    def _draw(self, tag: str, sequence: int, bound: int) -> int:
        return sim_draw(self.config.seed, tag, sequence, bound)

    def _user(self, tag: str, sequence: int) -> int:
        return skewed_draw(self.config.seed, tag, sequence, self.config.users)

    def _fee(self, tag: str, sequence: int) -> int:
        return 1 + self._draw("fee." + tag, sequence, self.config.fee_max)

    # ----- submission with backpressure ---------------------------------------

    def _submit(self, intent: tuple, sender, contract, method, *args, value=0, fee=1) -> bool:
        """Submit one transaction, mining for space when the pool is full.

        Admission can fail (pool full of higher-fee residents); each
        failed attempt mines a round to free capacity and re-offers at
        a bumped fee.  Returns False only if the mempool stays saturated
        for many rounds, which a finite population cannot sustain.
        """
        for attempt in range(32):
            try:
                tx = self.chain.submit(
                    sender, contract, method, *args, value=value, fee=fee + attempt
                )
            except MempoolFullError:
                self._mine_round()
                continue
            self._inflight[tx.seq] = intent
            return True
        return False

    # ----- operations ----------------------------------------------------------

    def _op_mint(self, op_seq: int) -> None:
        seller = self.population.account(self._user("mint.user", op_seq))
        payload = b"dataset:%d:%d" % (self.config.seed, op_seq)
        try:
            uri = self.net.put(payload)
        except StorageError:
            self.report.shed += 1  # every replica write lost; give up on this op
            return
        commitment = self._draw("commitment", op_seq, 1 << 62)
        if not self._submit(
            ("mint", (seller, uri, 0)), seller, self.token, "mint", uri, commitment,
            fee=self._fee("mint", op_seq),
        ):
            self.report.shed += 1

    def _op_trade(self, op_seq: int) -> None:
        if not self._token_ids:
            self._op_mint(op_seq)  # nothing to trade yet; seed the market
            return
        # Skewed pick, then a bounded linear probe past busy tokens.
        start = skewed_draw(self.config.seed, "trade.token", op_seq, len(self._token_ids))
        token_id = None
        for offset in range(min(len(self._token_ids), 16)):
            candidate = self._token_ids[(start + offset) % len(self._token_ids)]
            if candidate not in self._busy:
                token_id = candidate
                break
        if token_id is None:
            self._op_mint(op_seq)  # whole neighbourhood mid-trade; add supply
            return
        owner, _uri = self._tokens[token_id]
        buyer_index = self._user("trade.buyer", op_seq)
        buyer = self.population.account(buyer_index)
        if buyer == owner:
            buyer = self.population.account((buyer_index + 1) % self.config.users)
        pool_index = self._draw("trade.preimage", op_seq, self.config.preimage_pool)
        trade = _Trade(
            token_id,
            owner,
            buyer,
            1 + self._draw("trade.price", op_seq, self.config.price_max),
            self._preimages[pool_index],
            self._lock_hashes[pool_index],
        )
        self.report.trades_started += 1
        self._busy.add(token_id)
        if not self._submit(
            ("lock", trade), buyer, self.arbiter, "lock", trade.seller, trade.lock_hash,
            value=trade.price, fee=self._fee("lock", op_seq),
        ):
            self.report.shed += 1
            self.report.aborts += 1
            self._busy.discard(token_id)

    def _op_audit(self, op_seq: int) -> None:
        if not self._token_ids:
            return
        token_id = self._token_ids[
            skewed_draw(self.config.seed, "audit.token", op_seq, len(self._token_ids))
        ]
        self.report.audits += 1
        started = time.perf_counter()
        hits = None
        for _attempt in range(self.config.max_client_retries + 1):
            try:
                hits = self.chain.query_events("Minted", token_id=token_id)
                hits += self.chain.query_events("Transfer", token_id=token_id)
                break
            except EventDelayError:
                continue  # event log lagging; re-query
        self._audit_lat_us.append((time.perf_counter() - started) * 1e6)
        if hits is None:
            self.report.audit_misses += 1
            return
        # Content audit: the token's bytes must still be fetchable.
        _owner, uri = self._tokens[token_id]
        for _attempt in range(self.config.max_client_retries + 1):
            try:
                self.net.get(uri)
                return
            except (StorageError, TransientError):
                continue
        self.report.audit_misses += 1

    # ----- mining and state-machine advancement --------------------------------

    def _mine_round(self) -> None:
        # Evicted submissions never mine; their owners re-offer them at
        # a bumped fee (or abort) before the round executes.
        for tx in self.chain.mempool.drain_evicted():
            intent = self._inflight.pop(tx.seq, None)
            if intent is not None:
                self._retry(tx, intent)
        round_ = self.chain.mine_round(self.config.block_txs)
        self.report.rounds += 1
        for tx, receipt in round_.executed:
            self.report.mined += 1
            if not receipt.status:
                self.report.reverted += 1
            self._advance(tx, receipt)
        for tx in round_.dropped:
            self.report.dropped += 1
            self._retry(tx, self._inflight.pop(tx.seq))
        if self.config.check_every and self.report.rounds % self.config.check_every == 0:
            self.checker.check_round()

    def _advance(self, tx: PendingTx, receipt) -> None:
        intent = self._inflight.pop(tx.seq, None)
        if intent is None:
            return
        if not receipt.status:
            self._retry(tx, intent)
            return
        kind = intent[0]
        if kind == "mint":
            seller, uri, _r = intent[1]
            token_id = receipt.return_value
            self._tokens[token_id] = (seller, uri)
            self._token_ids.append(token_id)
            self.report.mints += 1
            return
        trade = intent[1]
        trade.retries = 0
        if kind == "lock":
            trade.deal_id = receipt.return_value
            trade.state = "open"
            self._submit(
                ("open", trade), trade.seller, self.arbiter, "open",
                trade.deal_id, trade.preimage, fee=self._fee("open", trade.deal_id),
            )
        elif kind == "open":
            trade.state = "transfer"
            self._submit(
                ("transfer", trade), trade.seller, self.token, "transfer_from",
                trade.seller, trade.buyer, trade.token_id,
                fee=self._fee("transfer", trade.deal_id),
            )
        elif kind == "transfer":
            trade.state = "done"
            _owner, uri = self._tokens[trade.token_id]
            self._tokens[trade.token_id] = (trade.buyer, uri)
            self._busy.discard(trade.token_id)
            self.report.trades_completed += 1
        elif kind == "refund":
            trade.state = "refunded"
            self._busy.discard(trade.token_id)
            self.report.refunds += 1

    def _retry(self, tx: PendingTx, intent: tuple) -> None:
        """Re-offer a dropped/reverted submission with a fee bump, or
        fall to the abort path once the retry budget is spent."""
        kind = intent[0]
        if kind == "mint":
            seller, uri, retries = intent[1]
            if retries < self.config.max_client_retries or self._draining:
                self._submit(
                    ("mint", (seller, uri, retries + 1)), seller, self.token, "mint",
                    uri, self._draw("commitment.retry", tx.seq, 1 << 62),
                    fee=tx.fee + 1,
                )
            else:
                self.report.shed += 1
            return
        trade = intent[1]
        trade.retries += 1
        within_budget = trade.retries <= self.config.max_client_retries or self._draining
        if kind == "lock":
            if within_budget:
                self._submit(
                    ("lock", trade), trade.buyer, self.arbiter, "lock",
                    trade.seller, trade.lock_hash, value=trade.price, fee=tx.fee + 1,
                )
            else:
                trade.state = "aborted"  # nothing escrowed yet; clean abort
                self._busy.discard(trade.token_id)
                self.report.aborts += 1
        elif kind == "open":
            if within_budget:
                self._submit(
                    ("open", trade), trade.seller, self.arbiter, "open",
                    trade.deal_id, trade.preimage, fee=tx.fee + 1,
                )
            else:
                # Seller could not deliver: the buyer reclaims escrow.
                trade.state = "refund"
                trade.retries = 0
                self._submit(
                    ("refund", trade), trade.buyer, self.arbiter, "refund",
                    trade.deal_id, fee=tx.fee + 1,
                )
        elif kind in ("transfer", "refund"):
            # Both are unconditionally retried: escrow is already
            # resolved (transfer) or must be (refund) — the drain phase
            # runs fault-free, so these always land eventually.
            self._submit(
                (kind, trade), trade.seller if kind == "transfer" else trade.buyer,
                self.arbiter if kind == "refund" else self.token,
                "refund" if kind == "refund" else "transfer_from",
                *((trade.deal_id,) if kind == "refund"
                  else (trade.seller, trade.buyer, trade.token_id)),
                fee=tx.fee + 1,
            )

    # ----- churn and fault epochs ----------------------------------------------

    def _churn(self, churn_seq: int) -> None:
        self.report.churn_events += 1
        names = sorted(self.net.nodes)
        low = self.config.replication + 1
        high = max(low + 1, 2 * self.config.dht_nodes)
        if len(names) <= low:
            joining = True
        elif len(names) >= high:
            joining = False
        else:
            joining = self._draw("churn.dir", churn_seq, 2) == 0
        if joining:
            self.net.join("churn-%d" % churn_seq)
        else:
            self.net.leave(names[self._draw("churn.victim", churn_seq, len(names))])
        if self.config.repair_every and self.report.churn_events % self.config.repair_every == 0:
            added, removed = self.net.repair()
            self.report.repaired += added + removed

    def _epoch_injector(self, epoch: int) -> FaultInjector | None:
        if self.config.fault_profile in ("", "off"):
            return None
        base = self.config.resolved_fault_seed()
        payload = b"zkdet-loadsim-epoch:%d:%d" % (base, epoch)
        epoch_seed = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
        plan = FaultPlan.profile(self.config.fault_profile, epoch_seed)
        return FaultInjector(plan)

    # ----- the run --------------------------------------------------------------

    def run(self) -> SimReport:
        cfg = self.config
        recorder = _ledger.begin("loadsim.run")
        started = time.perf_counter()
        ambient = faults.install(self._epoch_injector(0))
        injected = 0
        try:
            for op_seq in range(cfg.ops):
                if (
                    cfg.fault_epoch_ops
                    and op_seq
                    and op_seq % cfg.fault_epoch_ops == 0
                ):
                    # Rotate the injector so bounded profile budgets keep
                    # biting across a long run; count what the old one did.
                    old = faults.install(self._epoch_injector(op_seq // cfg.fault_epoch_ops))
                    injected += len(old.log) if old is not None else 0
                if cfg.churn_every and op_seq and op_seq % cfg.churn_every == 0:
                    self._churn(op_seq // cfg.churn_every)
                op = self.mix.draw_op(cfg.seed, op_seq)
                if op == "mint":
                    self._op_mint(op_seq)
                elif op == "trade":
                    self._op_trade(op_seq)
                else:
                    self._op_audit(op_seq)
                self._round_countdown -= 1
                if self._round_countdown <= 0:
                    self._mine_round()
                    self._round_countdown = cfg.ops_per_round
            # Drain: faults off, retries unbounded, run to quiescence.
            old = faults.install(None)
            injected += len(old.log) if old is not None else 0
            self._draining = True
            drain_rounds = 0
            while (self.chain.mempool or self._inflight) and drain_rounds < cfg.max_drain_rounds:
                self._mine_round()
                drain_rounds += 1
            if self.chain.mempool or self._inflight:
                self.checker.violations.append(
                    "drain did not converge after %d rounds (%d in mempool, %d in flight)"
                    % (drain_rounds, len(self.chain.mempool), len(self._inflight))
                )
            self.checker.check_final()
        finally:
            faults.install(ambient)
        self.report.duration_s = time.perf_counter() - started
        self.report.faults_injected = injected
        self.report.mempool_evicted = self.chain.mempool.evicted
        self.report.mempool_rejected = self.chain.mempool.rejected
        self.report.users_materialized = self.population.materialized
        self.report.blocks = len(self.chain.blocks)
        self.report.violations = list(self.checker.violations)
        if self._audit_lat_us:
            ordered = sorted(self._audit_lat_us)
            self.report.audit_p50_us = ordered[len(ordered) // 2]
            self.report.audit_p99_us = ordered[min(len(ordered) - 1, len(ordered) * 99 // 100)]
        self.report.digest = self._digest()
        recorder.finish(**self.report.to_dict())
        return self.report

    def _digest(self) -> str:
        """SHA-256 over everything decision-derived: receipts, events,
        blocks, final balances and final ownership.  Identical across
        replays of the same config; wall-clock never enters."""
        h = hashlib.sha256()
        for receipt in self.chain.receipts:
            h.update(
                b"r|%s|%s|%d|%d|%d|%s"
                % (
                    receipt.tx_hash.encode(),
                    receipt.method.encode(),
                    int(receipt.status),
                    receipt.lane,
                    receipt.block_number if receipt.block_number is not None else -1,
                    (receipt.error or "").encode(),
                )
            )
            for event in receipt.events:
                h.update(b"e|%s|%s" % (event.name.encode(), repr(event.fields).encode()))
        for block in self.chain.blocks:
            h.update(b"b|%s" % block.hash.encode())
        for address in sorted(self.chain._balances):
            h.update(b"a|%s|%d" % (address.encode(), self.chain._balances[address]))
        for token_id in sorted(self._tokens):
            owner, uri = self._tokens[token_id]
            h.update(b"t|%d|%s|%s" % (token_id, owner.encode(), uri.encode()))
        return h.hexdigest()


def run_sim(**overrides) -> SimReport:
    """One-call convenience: build a config, run it, return the report."""
    return LoadSimulator(SimConfig(**overrides)).run()
