"""zklint: zk-aware static analysis for the ZKDET reproduction.

Generic linters cannot see the invariants this codebase lives or dies
by; this package turns them into CI failures.  Ten rules ship, run in
two phases: every module is first folded into a whole-program
:class:`~repro.analysis.graph.Project` (import/call graph, symbol
resolution, attribute types) with a CFG-lite per-function path model
(:mod:`repro.analysis.flow`), then the rules query both:

=========  =============================================================
FS-001     Fiat-Shamir transcript discipline (frozen-heart bug class)
SEC-001    secret material must not leak into exceptions/telemetry/JSON
           (taint propagates one call level through the project graph)
DET-001    no entropy or clock sources on the prover/verifier path
FLD-001    no literal moduli, no floats outside the measurement layers
ENG-001    protocol code routes kernels through the engine; kernels
           record their telemetry counters
ASYNC-001  no blocking calls (``time.sleep``, sync I/O, ``Pool.join``,
           ``lock.acquire``) inside ``async def`` in the service plane
ASYNC-002  no ``await`` while holding a sync threading/multiprocessing
           lock
RES-001    every shared-memory segment / pool / ledger acquire is
           released on all CFG paths, exceptional ones included
FORK-001   no threads, event loops, sockets or held locks captured
           across the ``ProverPool`` fork boundary
FLT-002    registered fault sites on driver paths are wrapped in a
           ``RetryPolicy`` or an explicit abort/refund handler
=========  =============================================================

Run it as a module (the CI ``analyze`` job does exactly this)::

    python -m repro.analysis --strict src

Suppress a single deliberate site with a per-line pragma::

    beta = t.challenge(b"beta")  # zklint: disable=FS-001

or accept pre-existing findings wholesale in ``analysis_baseline.json``
(``--write-baseline`` regenerates it); ``--report-suppressions``
itemises the pragma debt and ``--format sarif`` feeds GitHub
code-scanning.  See ``docs/static_analysis.md`` for the rule catalogue
with before/after examples and the whole-program architecture notes.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import (
    AnalysisResult,
    ModuleInfo,
    analyze_paths,
    collect_files,
    module_rel,
)
from repro.analysis.findings import Finding
from repro.analysis.flow import FlowGraph, build_flow
from repro.analysis.graph import Project, build_project
from repro.analysis.pragmas import line_suppressions
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_suppressions,
    render_text,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, Rule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AnalysisConfig",
    "AnalysisResult",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CONFIG",
    "Finding",
    "FlowGraph",
    "ModuleInfo",
    "Project",
    "Rule",
    "analyze_paths",
    "build_flow",
    "build_project",
    "collect_files",
    "line_suppressions",
    "load_baseline",
    "module_rel",
    "render_json",
    "render_sarif",
    "render_suppressions",
    "render_text",
    "write_baseline",
]
