"""zklint: zk-aware static analysis for the ZKDET reproduction.

Generic linters cannot see the invariants this codebase lives or dies
by; this package turns them into CI failures.  Five rules ship:

========  ==============================================================
FS-001    Fiat-Shamir transcript discipline (frozen-heart bug class)
SEC-001   secret material must not leak into exceptions/telemetry/JSON
DET-001   no entropy or clock sources on the prover/verifier path
FLD-001   no literal moduli, no floats outside the measurement layers
ENG-001   protocol code routes kernels through the engine; kernels
          record their telemetry counters
========  ==============================================================

Run it as a module (the CI ``analyze`` job does exactly this)::

    python -m repro.analysis --strict src

Suppress a single deliberate site with a per-line pragma::

    beta = t.challenge(b"beta")  # zklint: disable=FS-001

or accept pre-existing findings wholesale in ``analysis_baseline.json``
(``--write-baseline`` regenerates it).  See ``docs/static_analysis.md``
for the rule catalogue with before/after examples.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import (
    AnalysisResult,
    ModuleInfo,
    analyze_paths,
    collect_files,
    module_rel,
)
from repro.analysis.findings import Finding
from repro.analysis.pragmas import line_suppressions
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, Rule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AnalysisConfig",
    "AnalysisResult",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CONFIG",
    "Finding",
    "ModuleInfo",
    "Rule",
    "analyze_paths",
    "collect_files",
    "line_suppressions",
    "load_baseline",
    "module_rel",
    "render_json",
    "render_text",
    "write_baseline",
]
