"""Committed-baseline support: pre-existing findings don't block CI.

The baseline file (``analysis_baseline.json`` at the repository root by
convention) records the fingerprints of findings that were present when
the suite was introduced or a rule was tightened.  ``--strict`` then
fails only on findings *not* in the baseline, so the suite can be adopted
without a flag-day cleanup while still forbidding regressions.

Fingerprints deliberately exclude line numbers — see
:meth:`repro.analysis.findings.Finding.fingerprint` — so unrelated edits
above a baselined finding do not invalidate the entry.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

#: Conventional baseline filename, resolved against the working directory.
DEFAULT_BASELINE_NAME = "analysis_baseline.json"

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


def load_baseline(path: str | Path | None) -> set[tuple[str, str, str]]:
    """Read a baseline file into a set of finding fingerprints.

    A missing path (or ``None``) yields the empty baseline; a present but
    malformed file raises :class:`BaselineError` — silently ignoring a
    corrupt baseline would un-suppress (or worse, mask) findings.
    """
    if path is None:
        return set()
    file_path = Path(path)
    if not file_path.exists():
        return set()
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError("baseline %s is not valid JSON: %s" % (file_path, exc)) from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError("baseline %s lacks a 'findings' list" % file_path)
    fingerprints: set[tuple[str, str, str]] = set()
    for entry in payload["findings"]:
        try:
            fingerprints.add((entry["rule"], entry["path"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                "baseline %s entry %r lacks rule/path/message" % (file_path, entry)
            ) from exc
    return fingerprints


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, deduped)."""
    entries = sorted(
        {f.fingerprint() for f in findings},
        key=lambda fp: (fp[1], fp[0], fp[2]),
    )
    payload = {
        "version": _FORMAT_VERSION,
        "comment": (
            "Pre-existing zklint findings accepted at adoption time; "
            "new findings are rejected under --strict.  Regenerate with "
            "python -m repro.analysis --write-baseline <paths>."
        ),
        "findings": [
            {"rule": rule, "path": rel_path, "message": message}
            for rule, rel_path, message in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def partition(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined) against the fingerprint set."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        if finding.fingerprint() in baseline:
            old.append(finding.as_baselined())
        else:
            new.append(finding)
    return new, old
