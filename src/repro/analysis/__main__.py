"""``python -m repro.analysis`` — the zklint command-line interface.

Exit codes:

- ``0`` — no (or only baselined) findings; also any non-strict run,
  which is advisory by design so the suite can be previewed anywhere,
- ``1`` — ``--strict`` and at least one new finding or parse error,
- ``2`` — usage error (argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_suppressions,
    render_text,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="zk-aware static analysis (zklint) for the ZKDET reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any new (non-baselined) finding or parse error",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif feeds GitHub code-scanning)",
    )
    parser.add_argument(
        "--report-suppressions",
        action="store_true",
        help="print the pragma-suppression debt summary instead of findings",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE_NAME,
        help="baseline file of accepted findings (default: %s)" % DEFAULT_BASELINE_NAME,
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all: %s)"
        % ",".join(sorted(RULES_BY_ID)),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print("%s  %s" % (rule.rule_id, rule.title))
        return 0

    rules = None
    if args.rules:
        wanted = [part.strip().upper() for part in args.rules.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in RULES_BY_ID]
        if unknown:
            parser.error("unknown rule id(s): %s" % ", ".join(unknown))
        rules = [RULES_BY_ID[rule_id] for rule_id in wanted]

    try:
        baseline = set() if args.no_baseline else load_baseline(args.baseline)
    except BaselineError as exc:
        print("zklint: %s" % exc, file=sys.stderr)
        return 1

    result = analyze_paths(args.paths, DEFAULT_CONFIG, rules=rules, baseline=baseline)

    if args.write_baseline:
        accepted = result.findings + result.baselined
        write_baseline(args.baseline, accepted)
        print(
            "zklint: wrote %d finding(s) to %s" % (len(accepted), args.baseline),
            file=sys.stderr,
        )
        return 0

    if args.report_suppressions:
        report = render_suppressions(result)
    elif args.format == "json":
        report = render_json(result, args.strict)
    elif args.format == "sarif":
        report = render_sarif(result, args.strict)
    else:
        report = render_text(result, args.strict)
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(report + "\n")
    else:
        print(report)

    if args.strict and result.failed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
