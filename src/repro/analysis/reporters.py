"""Text, JSON and SARIF reporters for zklint results.

The text form is for humans and CI logs; the JSON form is the machine
surface uploaded as a CI artifact alongside the benchmark payloads, so
it carries the same shape conventions (a ``schema_version`` plus a flat
summary block); the SARIF form feeds GitHub code-scanning so findings
surface as inline PR annotations.  All three derive their rule
catalogue from :data:`~repro.analysis.rules.ALL_RULES` — there is no
hand-maintained rule table to drift.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES

REPORT_SCHEMA_VERSION = 1

#: The SARIF version GitHub code-scanning ingests.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(result: AnalysisResult, strict: bool) -> str:
    """Human-readable report: one line per finding plus a summary."""
    out: list[str] = []
    for error in result.errors:
        out.append("ERROR %s" % error)
    for finding in result.findings:
        out.append(finding.render())
        if finding.snippet:
            out.append("    %s" % finding.snippet)
    summary = (
        "zklint: %d file(s) scanned, %d finding(s), %d baselined, %d error(s)"
        % (
            result.files_scanned,
            len(result.findings),
            len(result.baselined),
            len(result.errors),
        )
    )
    if result.findings and not strict:
        summary += " (advisory mode; rerun with --strict to fail)"
    out.append(summary)
    return "\n".join(out)


def render_json(result: AnalysisResult, strict: bool) -> str:
    """Machine-readable report (stable key order for diffable artifacts)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "strict": strict,
        "rules": {rule.rule_id: rule.title for rule in ALL_RULES},
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "errors": len(result.errors),
            "failed": bool(strict and result.failed),
        },
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(result: AnalysisResult, strict: bool) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning upload.

    New and baselined findings are both emitted (code-scanning does its
    own alert lifecycle); baselined ones carry ``baselineState:
    unchanged`` so they never page.  Pragma-suppressed findings are
    emitted with a ``suppressions`` entry, which code-scanning renders
    as dismissed — the same debt the ``--report-suppressions`` summary
    itemises.
    """
    rules = [
        {
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in ALL_RULES
    ]
    rule_index = {rule.rule_id: i for i, rule in enumerate(ALL_RULES)}

    def sarif_result(
        finding: Finding, baseline_state: str | None, suppressed: bool
    ) -> dict:
        entry: dict = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col + 1, 1),
                            "snippet": {"text": finding.snippet},
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "zklintFingerprint/v1": "|".join(finding.fingerprint())
            },
        }
        if baseline_state is not None:
            entry["baselineState"] = baseline_state
        if suppressed:
            entry["suppressions"] = [
                {"kind": "inSource", "justification": "zklint: disable pragma"}
            ]
        return entry

    results = (
        [sarif_result(f, "new" if strict else None, False) for f in result.findings]
        + [sarif_result(f, "unchanged", False) for f in result.baselined]
        + [sarif_result(f, None, True) for f in result.suppressed]
    )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "zklint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": error}}
                            for error in result.errors
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_suppressions(result: AnalysisResult) -> str:
    """The pragma-debt summary behind ``--report-suppressions``.

    Every finding a ``# zklint: disable=`` pragma silenced, grouped by
    rule with per-file locations — so suppression debt is reviewable the
    same way baseline debt is, instead of invisible.
    """
    out: list[str] = []
    by_rule: dict[str, list[Finding]] = {}
    for finding in result.suppressed:
        by_rule.setdefault(finding.rule, []).append(finding)
    total = len(result.suppressed)
    out.append(
        "zklint suppression debt: %d finding(s) silenced by pragmas across %d rule(s)"
        % (total, len(by_rule))
    )
    for rule_id in sorted(by_rule):
        findings = by_rule[rule_id]
        title = next(
            (r.title for r in ALL_RULES if r.rule_id == rule_id), ""
        )
        out.append("")
        out.append("%s (%d) — %s" % (rule_id, len(findings), title))
        for finding in findings:
            out.append("  %s:%d:%d: %s" % (finding.path, finding.line, finding.col, finding.message))
    if not by_rule:
        out.append("(clean: no active pragmas hide anything)")
    return "\n".join(out)
