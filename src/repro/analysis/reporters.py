"""Text and JSON reporters for zklint results.

The text form is for humans and CI logs; the JSON form is the machine
surface uploaded as a CI artifact alongside the benchmark payloads, so
it carries the same shape conventions (a ``schema_version`` plus a flat
summary block).
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.rules import ALL_RULES

REPORT_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, strict: bool) -> str:
    """Human-readable report: one line per finding plus a summary."""
    out: list[str] = []
    for error in result.errors:
        out.append("ERROR %s" % error)
    for finding in result.findings:
        out.append(finding.render())
        if finding.snippet:
            out.append("    %s" % finding.snippet)
    summary = (
        "zklint: %d file(s) scanned, %d finding(s), %d baselined, %d error(s)"
        % (
            result.files_scanned,
            len(result.findings),
            len(result.baselined),
            len(result.errors),
        )
    )
    if result.findings and not strict:
        summary += " (advisory mode; rerun with --strict to fail)"
    out.append(summary)
    return "\n".join(out)


def render_json(result: AnalysisResult, strict: bool) -> str:
    """Machine-readable report (stable key order for diffable artifacts)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "strict": strict,
        "rules": {rule.rule_id: rule.title for rule in ALL_RULES},
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "errors": len(result.errors),
            "failed": bool(strict and result.failed),
        },
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=False)
