"""Small AST helpers shared by the zklint rules (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Iterator

#: Node types that open a new scope — lexical traversals stop here so a
#: rule analysing one function never sees a nested function's body.
SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return base + "." + node.attr
    return None


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function and method in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def lexical_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes under ``node`` in source order, not crossing scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, SCOPE_NODES):
            continue
        if isinstance(child, ast.Call):
            yield child
        yield from lexical_calls(child)


def lexical_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """All nodes under ``node`` in source order, not crossing scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, SCOPE_NODES):
            continue
        yield child
        yield from lexical_nodes(child)


def call_label(call: ast.Call) -> str:
    """A human-readable label for a call's first constant argument."""
    if call.args and isinstance(call.args[0], ast.Constant):
        return repr(call.args[0].value)
    return "<dynamic>"


def assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from assigned_names(target.value)
