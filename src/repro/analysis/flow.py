"""CFG-lite: a per-function path model for the zklint rule pack.

Phase-two rules that argue about *all paths* — RES-001's "every acquire
is released on every path, including exceptional ones" — need more than
lexical AST walks.  This module builds a small statement-level control
flow graph per function:

- one node per simple statement (plus synthetic ENTRY/EXIT),
- branch edges for ``if``/``while``/``for`` (loops get a back edge and
  a fall-through exit edge),
- ``try``/``except``/``finally`` lowered with **exception edges**: any
  statement that contains a call *may raise*, adding an edge to the
  innermost matching handler or ``finally`` block, or straight to EXIT
  when unprotected,
- ``return``/``raise``/``break``/``continue`` wired to their targets
  (through enclosing ``finally`` blocks, overapproximately: a finally
  body is entered once and then forwards to every pending exit).

On top of the graph two queries ship:

- :meth:`FlowGraph.dominates` — classic iterative dominator dataflow,
  "is A on every path from ENTRY to B?";
- :meth:`FlowGraph.any_path_avoids` — "is there a path from ``start``
  to EXIT that never touches ``avoid``?", the leak query: if a path
  from the acquire's successors reaches EXIT without crossing a
  release, the resource can leak.

The model is an *overapproximation of paths* (every real path exists in
the graph; the graph may contain infeasible ones), which is the safe
direction for must-release proofs: RES-001 can report a leak that a
branch condition actually prevents, but never miss one the graph
represents.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class FlowNode:
    """One CFG node; ``stmt`` is None for synthetic ENTRY/EXIT nodes."""

    index: int
    stmt: Optional[ast.stmt]
    label: str
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)
    #: The successor taken when this statement itself raises (None when
    #: it cannot).  Kept separate so "start from the acquire's *normal*
    #: successors" queries can exclude the acquire's own failure path.
    exc_succ: Optional[int] = None

    @property
    def line(self) -> int:
        return 0 if self.stmt is None else self.stmt.lineno


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether a statement can raise mid-execution.

    Conservative: any statement containing a call (or an explicit
    ``raise``/``assert``) may raise.  Attribute access and arithmetic
    can raise too, but flagging every statement would drown the finally
    modelling in noise; calls are where resource-rule hazards live.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom)):
            return True
    return False


@dataclass
class _Frame:
    """Lowering context: where abrupt exits inside this region go."""

    #: Node index exceptions propagate to (handler head / finally head /
    #: EXIT).
    except_target: int
    break_target: Optional[int] = None
    continue_target: Optional[int] = None
    #: Node index ``return`` forwards to (finally head, else EXIT).
    return_target: Optional[int] = None


class FlowGraph:
    """Statement-level CFG for one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.nodes: list[FlowNode] = []
        self.entry = self._new(None, "ENTRY")
        self.exit = self._new(None, "EXIT")
        self._by_stmt: dict[int, int] = {}
        self._build()
        self._dominators: Optional[list[set[int]]] = None

    # ----- construction ---------------------------------------------------

    def _new(self, stmt: Optional[ast.stmt], label: str) -> int:
        node = FlowNode(index=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    def _build(self) -> None:
        frame = _Frame(except_target=self.exit, return_target=self.exit)
        tail = self._lower_body(self.func.body, self.entry, frame)
        if tail is not None:
            self._edge(tail, self.exit)

    def _lower_body(
        self, body: Sequence[ast.stmt], pred: Optional[int], frame: _Frame
    ) -> Optional[int]:
        """Lower a statement list; returns the fall-through node or None."""
        current = pred
        for stmt in body:
            if current is None:
                # Unreachable code after return/raise/break: still build
                # nodes so queries about them don't KeyError, but leave
                # them disconnected from ENTRY.
                current = self._lower_stmt(stmt, None, frame)
            else:
                current = self._lower_stmt(stmt, current, frame)
        return current

    def _lower_stmt(
        self, stmt: ast.stmt, pred: Optional[int], frame: _Frame
    ) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, pred, frame)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, pred, frame)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, pred, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, pred, frame)
        node = self._new(stmt, type(stmt).__name__)
        self._by_stmt[id(stmt)] = node
        if pred is not None:
            self._edge(pred, node)
        if _may_raise(stmt) and not isinstance(stmt, (ast.Return, ast.Raise)):
            self._edge(node, frame.except_target)
            self.nodes[node].exc_succ = frame.except_target
        if isinstance(stmt, ast.Return):
            target = frame.return_target if frame.return_target is not None else self.exit
            self._edge(node, target)
            return None
        if isinstance(stmt, ast.Raise):
            self._edge(node, frame.except_target)
            return None
        if isinstance(stmt, ast.Break):
            if frame.break_target is not None:
                self._edge(node, frame.break_target)
            return None
        if isinstance(stmt, ast.Continue):
            if frame.continue_target is not None:
                self._edge(node, frame.continue_target)
            return None
        return node

    def _lower_if(self, stmt: ast.If, pred: Optional[int], frame: _Frame) -> Optional[int]:
        head = self._new(stmt, "If")
        self._by_stmt[id(stmt)] = head
        if pred is not None:
            self._edge(pred, head)
        if _may_raise(stmt.test):  # type: ignore[arg-type]
            self._edge(head, frame.except_target)
        then_tail = self._lower_body(stmt.body, head, frame)
        if stmt.orelse:
            else_tail = self._lower_body(stmt.orelse, head, frame)
        else:
            else_tail = head  # false branch falls through
        join: Optional[int] = None
        for tail in (then_tail, else_tail):
            if tail is None:
                continue
            if join is None:
                join = self._new(None, "IfJoin")
            self._edge(tail, join)
        return join

    def _lower_loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        pred: Optional[int],
        frame: _Frame,
    ) -> Optional[int]:
        head = self._new(stmt, type(stmt).__name__)
        self._by_stmt[id(stmt)] = head
        if pred is not None:
            self._edge(pred, head)
        after = self._new(None, "LoopExit")
        # The loop may execute zero times (or the iterator may raise).
        self._edge(head, after)
        if _may_raise(stmt):
            self._edge(head, frame.except_target)
        inner = _Frame(
            except_target=frame.except_target,
            break_target=after,
            continue_target=head,
            return_target=frame.return_target,
        )
        body_tail = self._lower_body(stmt.body, head, inner)
        if body_tail is not None:
            self._edge(body_tail, head)  # back edge
        if stmt.orelse:
            else_tail = self._lower_body(stmt.orelse, head, frame)
            if else_tail is not None:
                self._edge(else_tail, after)
        return after

    def _lower_with(
        self, stmt: ast.With | ast.AsyncWith, pred: Optional[int], frame: _Frame
    ) -> Optional[int]:
        # A `with` head both runs __enter__ (may raise) and guarantees
        # __exit__ on all inner paths; for the path queries the head node
        # doubles as the context-manager marker RES-001 looks for.
        head = self._new(stmt, type(stmt).__name__)
        self._by_stmt[id(stmt)] = head
        if pred is not None:
            self._edge(pred, head)
        self._edge(head, frame.except_target)
        return self._lower_body(stmt.body, head, frame)

    def _lower_try(self, stmt: ast.Try, pred: Optional[int], frame: _Frame) -> Optional[int]:
        head = self._new(stmt, "Try")
        self._by_stmt[id(stmt)] = head
        if pred is not None:
            self._edge(pred, head)
        exits: list[int] = []

        if stmt.finalbody:
            # The finally body is lowered once; every abrupt or normal
            # exit of the protected region funnels through its head and
            # its tail forwards to every pending continuation — an
            # overapproximation (a `return` path and the fall-through
            # path share one finally instance) that preserves "finally
            # is on every path".
            fin_head = self._new(None, "FinallyHead")
            fin_frame = _Frame(
                except_target=frame.except_target,
                break_target=frame.break_target,
                continue_target=frame.continue_target,
                return_target=frame.return_target,
            )
            fin_tail = self._lower_body(stmt.finalbody, fin_head, fin_frame)
            inner_except = fin_head
            inner_frame = _Frame(
                except_target=fin_head,
                break_target=fin_head if frame.break_target is not None else None,
                continue_target=fin_head if frame.continue_target is not None else None,
                return_target=fin_head,
            )
        else:
            fin_head = fin_tail = None
            inner_except = frame.except_target
            inner_frame = frame

        handler_heads: list[int] = []
        if stmt.handlers:
            # Exceptions in the try body go to the handlers first; an
            # unmatched exception still escapes to inner_except, modelled
            # by the handler head forwarding there.
            dispatch = self._new(None, "ExceptDispatch")
            body_frame = _Frame(
                except_target=dispatch,
                break_target=inner_frame.break_target,
                continue_target=inner_frame.continue_target,
                return_target=inner_frame.return_target,
            )
            self._edge(dispatch, inner_except)  # no handler matches
        else:
            dispatch = None
            body_frame = inner_frame

        body_tail = self._lower_body(stmt.body, head, body_frame)

        for handler in stmt.handlers:
            h_head = self._new(handler, "ExceptHandler")  # type: ignore[arg-type]
            self._by_stmt[id(handler)] = h_head
            assert dispatch is not None
            self._edge(dispatch, h_head)
            handler_heads.append(h_head)
            h_tail = self._lower_body(handler.body, h_head, inner_frame)
            if h_tail is not None:
                exits.append(h_tail)

        if stmt.orelse:
            else_tail = self._lower_body(stmt.orelse, body_tail, body_frame)
            if else_tail is not None:
                exits.append(else_tail)
        elif body_tail is not None:
            exits.append(body_tail)

        if fin_head is not None:
            for tail in exits:
                self._edge(tail, fin_head)
            if fin_tail is None:
                return None
            # The finally tail forwards to all pending continuations:
            # the enclosing exception path plus normal fall-through.
            self._edge(fin_tail, frame.except_target)
            if frame.return_target is not None:
                self._edge(fin_tail, frame.return_target)
            return fin_tail
        if not exits:
            return None
        if len(exits) == 1:
            return exits[0]
        join = self._new(None, "TryJoin")
        for tail in exits:
            self._edge(tail, join)
        return join

    # ----- queries --------------------------------------------------------

    def node_for(self, stmt: ast.stmt) -> Optional[int]:
        """CFG node index for a statement lowered into this graph."""
        return self._by_stmt.get(id(stmt))

    def normal_succs(self, index: int) -> set[int]:
        """Successors excluding the node's own exception edge."""
        node = self.nodes[index]
        if node.exc_succ is None:
            return set(node.succs)
        return node.succs - {node.exc_succ}

    def reachable(self, start: int) -> set[int]:
        """Nodes reachable from ``start`` (inclusive)."""
        seen = {start}
        frontier = [start]
        while frontier:
            for succ in self.nodes[frontier.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def any_path_avoids(self, start: int, avoid: set[int]) -> bool:
        """Is there a path ``start`` → EXIT that never enters ``avoid``?

        ``start`` itself is exempt (asking "after this acquire, can we
        reach EXIT without releasing?").  Nodes in ``avoid`` are treated
        as absorbing — traversal stops there.
        """
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for succ in self.nodes[current].succs:
                if succ in avoid or succ in seen:
                    continue
                if succ == self.exit:
                    return True
                seen.add(succ)
                frontier.append(succ)
        return False

    def _compute_dominators(self) -> list[set[int]]:
        n = len(self.nodes)
        all_nodes = set(range(n))
        dom: list[set[int]] = [all_nodes.copy() for _ in range(n)]
        dom[self.entry] = {self.entry}
        order = [i for i in self.reachable(self.entry) if i != self.entry]
        changed = True
        while changed:
            changed = False
            for i in order:
                preds = list(self.nodes[i].preds)
                if preds:
                    new: set[int] = all_nodes.copy()
                    for p in preds:
                        new &= dom[p]
                else:
                    new = set()
                new |= {i}
                if new != dom[i]:
                    dom[i] = new
                    changed = True
        return dom

    def dominates(self, a: int, b: int) -> bool:
        """True when every path ENTRY → ``b`` passes through ``a``."""
        if self._dominators is None:
            self._dominators = self._compute_dominators()
        return a in self._dominators[b]


def build_flow(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FlowGraph:
    """Build the CFG for one function (nested defs are *not* inlined)."""
    return FlowGraph(func)
