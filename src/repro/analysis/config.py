"""zklint configuration: lexicons, module scopes and allowlists.

Everything a rule needs to know about *this* repository lives here, in
one place, so tightening a rule is a config edit with a reviewable diff
rather than a change buried in rule logic.  Paths in this module are
package-relative (``plonk/prover.py``, not ``src/repro/plonk/prover.py``)
— see :func:`repro.analysis.engine.module_rel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_secret_exact() -> frozenset[str]:
    # Identifiers that are secrets whenever they appear verbatim: witness
    # and key material from core/exchange.py and core/zkcp.py (the data
    # key ``key``, the buyer's verification key ``k_v``, the commitment
    # opening ``o_k``), SRS/Groth16 trapdoors, and blinding factors.
    return frozenset(
        {
            "witness",
            "sk",
            "secret",
            "secret_key",
            "decryption_key",
            "opening",
            "blinder",
            "blinding",
            "aux",
            "key",
            "k_v",
            "o_k",
            "tau",
            "rho",
            "trapdoor",
            "toxic_waste",
            "plaintext",
        }
    )


def _default_secret_tokens() -> frozenset[str]:
    # Snake-case *components* that taint compound identifiers, e.g.
    # ``key_blinder`` and ``witness_values``.  Deliberately excludes
    # ``key``: ``key_hash``, ``cache_key`` and ``public_key`` are benign
    # and would drown the rule in noise.
    return frozenset({"witness", "secret", "blinder", "blinding", "trapdoor", "sk"})


@dataclass(frozen=True)
class AnalysisConfig:
    """Repository-specific knobs for the shipped rule catalogue."""

    # ----- SEC-001 --------------------------------------------------------
    secret_exact: frozenset[str] = field(default_factory=_default_secret_exact)
    secret_tokens: frozenset[str] = field(default_factory=_default_secret_tokens)

    # ----- DET-001 --------------------------------------------------------
    #: Module prefixes whose code must be deterministic: everything on the
    #: prover/verifier/transcript path.  Telemetry, the chain simulator,
    #: the cost model and the apps layer are intentionally outside.
    deterministic_scopes: tuple[str, ...] = (
        "plonk/",
        "groth16/",
        "kzg/",
        "curve/",
        "field/",
        "r1cs/",
        "gadgets/",
        "primitives/",
        "backend/",
    )
    #: Designated sampling sites: the one CSPRNG wrapper every other
    #: module must go through, plus the commitment scheme whose hiding
    #: property *requires* fresh randomness.
    deterministic_allowed_files: frozenset[str] = frozenset(
        {"field/fr.py", "primitives/commitment.py"}
    )
    #: Call targets considered nondeterministic (dotted-name prefixes).
    nondeterministic_calls: tuple[str, ...] = (
        "random.",
        "secrets.",
        "uuid.",
        "numpy.random.",
        "np.random.",
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom",
    )
    #: Module imports banned outright inside the deterministic scope.
    #: ``repro.faults`` is measurement-layer machinery: its own seeded
    #: draws are fine where they live (``faults/`` is outside the scope),
    #: but importing the injector into a proving-path module would let a
    #: fault schedule perturb proof generation.
    nondeterministic_imports: frozenset[str] = frozenset(
        {"random", "secrets", "uuid", "numpy.random", "repro.faults"}
    )

    # ----- FLD-001 --------------------------------------------------------
    #: Directories allowed to use floats: curve/field host the (integer)
    #: arithmetic but also document magnitudes; costmodel and apps are
    #: measurement / ML layers; telemetry measures wall-clock seconds.
    float_allowed_dirs: tuple[str, ...] = (
        "curve/",
        "field/",
        "costmodel/",
        "apps/",
        "telemetry/",
        # The fault plane is measurement-layer code like telemetry; its
        # probabilities are integer PPM by design, but overhead ratios in
        # docstrings/diagnostics may be float-typed.
        "faults/",
        # The service plane deals in wall-clock deadlines, latency
        # percentiles and queue budgets — measurement-layer floats, never
        # field elements.
        "service/",
        # The load simulator reports tx/s and latency percentiles —
        # measurement-layer floats; its *decisions* (traffic draws,
        # fees, lane routing) are all-integer for exact replay.
        "loadsim/",
    )
    #: The fixed-point boundary: the only modules that may touch floats
    #: while producing field elements, because converting real-valued
    #: inputs is their entire job.
    float_allowed_files: frozenset[str] = frozenset(
        {"gadgets/fixedpoint.py", "gadgets/linalg.py", "core/predicates.py"}
    )
    #: Integer literals at least this large used as a modulus are assumed
    #: to be a hand-inlined BN254 modulus (both BN254 moduli are ~2**254).
    literal_modulus_floor: int = 1 << 100

    # ----- ENG-001 --------------------------------------------------------
    #: Protocol layers that must route kernels through the engine.
    protocol_scopes: tuple[str, ...] = ("kzg/", "plonk/", "groth16/")
    #: Kernel modules protocol code must not import directly.
    banned_kernel_modules: frozenset[str] = frozenset(
        {"repro.field.ntt", "repro.curve.msm", "repro.curve.pairing", "repro.curve.pairing_ref"}
    )
    #: Names importable from banned kernel modules anyway: pure constants
    #: with no execution strategy attached.
    allowed_kernel_names: frozenset[str] = frozenset({"COSET_SHIFT"})
    #: Layers that must stay ignorant of the contiguous data plane.  The
    #: packed scalar/point representation (cell layout, shm segment
    #: lifetimes) is owned by the compute engine; a protocol module that
    #: unpacks cells itself would freeze the layout into the protocol
    #: layer and bypass the ownership rules in ``docs/data_plane.md``.
    substrate_scopes: tuple[str, ...] = ("kzg/", "plonk/", "groth16/", "core/")
    #: Contiguous-representation internals only ``backend/`` may import.
    substrate_internal_modules: frozenset[str] = frozenset(
        {"repro.field.frvec", "repro.backend.shm"}
    )
    #: Engine modules whose public kernels must record telemetry.
    backend_scopes: tuple[str, ...] = ("backend/",)
    #: Call leaf-names that count as *timing* a kernel (the duration half
    #: of the count-and-time contract; see ``telemetry.kernel_timer``).
    kernel_timer_calls: frozenset[str] = frozenset({"kernel_timer"})
    #: The public kernel surface of :class:`repro.backend.engine.Engine`.
    kernel_methods: frozenset[str] = frozenset(
        {
            "ntt",
            "intt",
            "coset_ntt",
            "coset_intt",
            "ntt_batch",
            "msm_jac",
            "msm_jac_g2",
            "msm_srs",
            "msm_g1_fixed",
            "fixed_base_mul_jac",
            "pairing",
            "pairing_check",
            "batch_inverse",
        }
    )

    # ----- FS-001 ---------------------------------------------------------
    #: Methods that absorb data into a Fiat-Shamir transcript.
    transcript_absorb_methods: frozenset[str] = frozenset(
        {"append_bytes", "append_scalar", "append_point"}
    )
    #: Methods that squeeze a challenge out of the transcript.
    transcript_challenge_methods: frozenset[str] = frozenset({"challenge"})

    # ----- ASYNC-001 / ASYNC-002 ------------------------------------------
    #: Module prefixes where coroutines must never block the event loop.
    async_scopes: tuple[str, ...] = ("service/",)
    #: Dotted-name prefixes that block the calling thread outright.
    blocking_call_prefixes: tuple[str, ...] = (
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_output",
        "subprocess.check_call",
        "os.system",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.",
        "input",
    )
    #: Leaf method names that block *when the receiver looks like the
    #: matching object*: ``apply``/``map``/``join`` on something named
    #: like a pool, ``acquire`` on something named like a lock.  The
    #: receiver-token pairing keeps ``dict.get``/``Queue.join`` style
    #: homonyms out.
    blocking_leaf_receivers: frozenset[tuple[str, str]] = frozenset(
        {
            ("apply", "pool"),
            ("map", "pool"),
            ("starmap", "pool"),
            ("join", "pool"),
            ("join", "thread"),
            ("join", "proc"),
            ("join", "process"),
            ("acquire", "lock"),
            ("acquire", "sem"),
            ("acquire", "semaphore"),
            ("wait", "event"),
            ("wait", "barrier"),
            ("recv", "sock"),
            ("recv", "conn"),
        }
    )
    #: Constructor names whose instances are *synchronous* locks: holding
    #: one across an ``await`` (ASYNC-002) deadlocks the loop under
    #: contention because the waiter never yields.
    sync_lock_constructors: frozenset[str] = frozenset(
        {
            "threading.Lock",
            "threading.RLock",
            "threading.Semaphore",
            "threading.BoundedSemaphore",
            "threading.Condition",
            "multiprocessing.Lock",
            "multiprocessing.RLock",
            "multiprocessing.Semaphore",
        }
    )

    # ----- RES-001 --------------------------------------------------------
    #: Module prefixes under must-release discipline.
    resource_scopes: tuple[str, ...] = ("backend/", "service/")
    #: Acquire call (dotted suffix) -> leaf names that release the binding.
    #: An acquire whose result does not escape (no attribute/container
    #: store, return, yield, or hand-off to a non-release call) must reach
    #: one of its release leaves on every CFG path, exceptional included.
    resource_acquires: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("create_segment", ("release_segment",)),
        ("attach_segment", ("close",)),
        ("SharedMemory", ("close", "unlink")),
        ("Pool", ("terminate", "close", "join")),
        ("acquire_ledger", ("release_ledger",)),
    )

    # ----- FORK-001 -------------------------------------------------------
    #: Module prefixes checked for state captured across a fork boundary.
    fork_scopes: tuple[str, ...] = ("service/", "backend/")
    #: Dotted suffixes that create a fork-based worker pool.
    fork_pool_calls: tuple[str, ...] = ("Pool",)
    #: Dotted-name prefixes that create state which must not exist in the
    #: parent when a fork pool is spawned: forked children inherit a
    #: started thread's locks mid-flight, a running loop's selector fd,
    #: and open sockets, all silently corrupt.
    fork_hazard_calls: tuple[str, ...] = (
        "threading.Thread",
        "threading.Timer",
        "asyncio.get_event_loop",
        "asyncio.get_running_loop",
        "asyncio.new_event_loop",
        "asyncio.run",
        "socket.socket",
        "socket.create_connection",
    )

    # ----- FLT-002 --------------------------------------------------------
    #: Module prefixes whose fault-site calls must be wrapped.
    fault_discipline_scopes: tuple[str, ...] = ("core/", "service/")
    #: Dotted suffixes registered as fault sites (mirrors faults/plan.py).
    fault_site_calls: tuple[str, ...] = (
        "chain.transact",
        "storage.put",
        "storage.get",
        "dht.publish",
        "dht.lookup",
        "dht.get",
        "msg.send",
        "msg.recv",
    )
    #: Identifier tokens that mark a retry-policy receiver (``policy.run``,
    #: ``self.retry.run``, ``ABORT_POLICY.run``, ``RetryPolicy(...).run``).
    retry_receiver_tokens: frozenset[str] = frozenset(
        {"retry", "policy", "retrypolicy", "abort_policy", "default_policy"}
    )
    #: Exception leaf-names whose handlers count as explicit abort/refund
    #: recovery for a naked fault-site call inside a ``try``.
    abort_handler_tokens: frozenset[str] = frozenset(
        {"faultinjected", "exchangeaborted", "chainerror", "exception"}
    )


DEFAULT_CONFIG = AnalysisConfig()
