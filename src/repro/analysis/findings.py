"""The finding data model shared by every zklint rule and reporter.

A :class:`Finding` is one rule violation anchored to a source location.
Findings are *identified* by their :meth:`~Finding.fingerprint` — the
``(rule, path, message)`` triple without the line number — so a committed
baseline keeps matching after unrelated edits move code up or down a
file.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    baselined: bool = False

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers excluded)."""
        return (self.rule, self.path, self.message)

    def as_baselined(self) -> "Finding":
        return replace(self, baselined=True)

    def as_dict(self) -> dict:
        """JSON-ready representation (reporters and the baseline writer)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: RULE message``."""
        tag = " (baselined)" if self.baselined else ""
        return "%s:%d:%d: %s %s%s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
            tag,
        )
