"""Per-line ``# zklint: disable=RULE`` pragma parsing.

A pragma suppresses findings *on its own line only* — the narrowest
possible scope, so a suppression cannot silently swallow a future
violation three lines away.  Several rules may be listed separated by
commas, and ``all`` disables every rule on the line::

    beta = transcript.challenge(b"beta")  # zklint: disable=FS-001
    x = weird()  # zklint: disable=FS-001,SEC-001
    y = hack()   # zklint: disable=all

Suppressions are extracted lexically (not via the AST) so they work on
lines that are part of larger multi-line statements.
"""

from __future__ import annotations

import re

_PRAGMA_RE = re.compile(r"#\s*zklint:\s*disable=([A-Za-z0-9_,\s\-]+)")

#: Sentinel rule name matching every rule.
ALL = "ALL"


def line_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the set of rule ids disabled there."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = {part.strip().upper() for part in match.group(1).split(",")}
        rules.discard("")
        if rules:
            out[lineno] = rules
    return out


def is_suppressed(rule: str, line: int, suppressions: dict[int, set[str]]) -> bool:
    """True when ``rule`` is pragma-disabled on ``line``."""
    active = suppressions.get(line)
    if not active:
        return False
    return rule.upper() in active or ALL in active
