"""The zklint analysis engine: discover files, parse, build, run, filter.

The pipeline is deliberately boring, now in two phases:

1. collect ``*.py`` files under the given paths (``__pycache__`` skipped),
2. parse each with stdlib :mod:`ast` (never importing the target code),
3. **phase one** — fold every parsed module into one
   :class:`~repro.analysis.graph.Project` (import/call graph, symbol
   resolution, attribute types),
4. **phase two** — run every enabled rule over every module via
   :meth:`~repro.analysis.rules.Rule.check_with_project` (per-module
   rules just ignore the project),
5. set aside findings suppressed by a per-line pragma (kept on the
   result for ``--report-suppressions``),
6. split the rest into *new* vs *baselined* against the committed
   baseline.

Module paths are reported relative to the invocation (``display``) and
matched against rule scopes via a package-relative path (``rel``): the
part after the last ``repro/`` component, so ``src/repro/plonk/prover.py``
and a test fixture at ``tests/fixtures/zklint/repro/plonk/bad.py`` both
scope as ``plonk/prover.py`` / ``plonk/bad.py``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import partition
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.graph import build_project
from repro.analysis.pragmas import is_suppressed, line_suppressions
from repro.analysis.rules import ALL_RULES, Rule


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: Path
    display: str
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = field(default_factory=list)


@dataclass
class AnalysisResult:
    """Outcome of one run: new findings, baselined findings, parse errors."""

    findings: list[Finding]
    baselined: list[Finding]
    errors: list[str]
    files_scanned: int = 0
    #: Findings silenced by a per-line pragma — the suppression debt the
    #: ``--report-suppressions`` summary itemises.  Never gates.
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when a strict run must exit non-zero."""
        return bool(self.findings or self.errors)


def module_rel(path: Path) -> str:
    """Package-relative posix path: the part after the last ``repro/``."""
    parts = path.as_posix().split("/")
    if "repro" in parts[:-1]:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index + 1 :])
    return path.name


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out


def load_module(path: Path) -> ModuleInfo:
    """Parse ``path``; raises SyntaxError/OSError for the caller to report."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    display = path.as_posix()
    if not path.is_absolute():
        display = os.path.normpath(display).replace(os.sep, "/")
    return ModuleInfo(
        path=path,
        display=display,
        rel=module_rel(path),
        source=source,
        lines=source.splitlines(),
        tree=tree,
        functions=functions,
    )


def analyze_paths(
    paths: Sequence[str | Path],
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Sequence[Rule] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
) -> AnalysisResult:
    """Run the rule suite over ``paths`` and return the filtered result."""
    active_rules = list(ALL_RULES) if rules is None else list(rules)
    files = collect_files(paths)
    errors: list[str] = []
    modules: list[ModuleInfo] = []
    for file_path in files:
        try:
            modules.append(load_module(file_path))
        except SyntaxError as exc:
            errors.append("%s: syntax error: %s" % (file_path.as_posix(), exc.msg))
        except OSError as exc:
            errors.append("%s: unreadable: %s" % (file_path.as_posix(), exc))
    # Phase one: the whole-program graph over every module that parsed.
    project = build_project(modules)
    # Phase two: rules, with pragma partitioning instead of dropping.
    raw: list[Finding] = []
    suppressed: list[Finding] = []
    for module in modules:
        suppressions = line_suppressions(module.source)
        for rule in active_rules:
            for finding in rule.check_with_project(module, config, project):
                if is_suppressed(finding.rule, finding.line, suppressions):
                    suppressed.append(finding)
                    continue
                raw.append(finding)
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    new, old = partition(raw, baseline or set())
    return AnalysisResult(
        findings=new,
        baselined=old,
        errors=errors,
        files_scanned=len(files),
        suppressed=suppressed,
    )
