"""The zklint project graph: imports, symbols, types and calls.

Phase one of the two-phase analyser (see :mod:`repro.analysis.engine`):
every parsed module is folded into one :class:`Project` before any rule
runs, so rules can ask *whole-program* questions a per-file pass cannot
answer — "which function does ``self.pool.close()`` resolve to?",
"who calls ``ProverPool.prove_key_negotiation``?", "does this helper
block when called from a coroutine?".

Resolution is deliberately conservative and purely syntactic (stdlib
``ast`` only; the analysed code is never imported):

- **module names** come from the package-relative path
  (``service/node.py`` → ``repro.service.node``), so a test fixture at
  ``tests/fixtures/zklint/repro/service/x.py`` resolves like real code;
- **aliases** track ``import a.b as c`` / ``from a.b import c as d``
  (including relative imports) to fully-qualified dotted names;
- **types** are inferred from three unambiguous shapes only: parameter
  annotations (``def f(buyer: Buyer)``), plain constructor assignments
  (``x = ClassName(...)``) and attribute constructor assignments or
  annotations inside a class (``self.pool = ProverPool(...)``,
  ``self.pool: Optional[ProverPool]``);
- anything else resolves to ``None`` and rules must degrade gracefully.

A call edge exists only when the callee resolves to a function *defined
in the analysed tree*; stdlib and third-party calls are kept as raw
dotted names on :class:`FunctionNode.calls` for rules that match on
name shape instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, TYPE_CHECKING, TypeVar

from repro.analysis.astutil import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.engine import ModuleInfo

T = TypeVar("T")

#: The package every analysed tree is rooted at (``module_rel`` strips
#: everything up to the last ``repro/`` path component).
ROOT_PACKAGE = "repro"


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: The raw dotted callee (``self.pool.close``), or ``None`` for
    #: dynamic callees (``fns[i]()``).
    dotted: Optional[str]
    #: Fully-qualified name of the resolved project function, if any.
    target: Optional[str]
    #: True when the call is directly awaited (``await x.f()``).
    awaited: bool = False


@dataclass
class FunctionNode:
    """A function or method defined somewhere in the analysed tree."""

    qname: str
    name: str
    module: "ModuleGraphNode"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: Optional[str] = None
    is_async: bool = False
    calls: list[CallSite] = field(default_factory=list)

    @property
    def params(self) -> list[str]:
        """Positional parameter names, ``self``/``cls`` excluded."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names


@dataclass
class ClassNode:
    """A class defined in the analysed tree."""

    qname: str
    name: str
    module: "ModuleGraphNode"
    node: ast.ClassDef
    #: Method name -> qualified function name.
    methods: dict[str, str] = field(default_factory=dict)
    #: Base class names, resolved to project class qnames where possible.
    bases: list[str] = field(default_factory=list)
    #: ``self.<attr>`` -> project class qname, from constructor
    #: assignments and annotations.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleGraphNode:
    """One module's slice of the project graph."""

    info: "ModuleInfo"
    name: str
    #: Local alias -> fully-qualified dotted target.
    aliases: dict[str, str] = field(default_factory=dict)
    #: Dotted names of every module this module imports.
    imports: set[str] = field(default_factory=set)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassNode] = field(default_factory=dict)


def module_name_for(rel: str) -> str:
    """Dotted module name for a package-relative path.

    ``service/node.py`` → ``repro.service.node``;
    ``service/__init__.py`` → ``repro.service``; ``__init__.py`` →
    ``repro``.
    """
    parts = rel.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([ROOT_PACKAGE] + [p for p in parts if p])


class Project:
    """The whole-program view rules query during phase two."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleGraphNode] = {}
        self.modules_by_rel: dict[str, ModuleGraphNode] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self._callers: dict[str, set[str]] = {}
        self._memo: dict[object, object] = {}

    # ----- generic memo space (rules cache derived facts here) ------------

    def memo(self, key: object, compute: Callable[[], T]) -> T:
        """Per-project memoisation for rule-derived facts."""
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]  # type: ignore[return-value]

    # ----- graph queries --------------------------------------------------

    def function(self, qname: str) -> Optional[FunctionNode]:
        return self.functions.get(qname)

    def callees(self, qname: str) -> set[str]:
        """Resolved project functions called by ``qname``."""
        func = self.functions.get(qname)
        if func is None:
            return set()
        return {c.target for c in func.calls if c.target is not None}

    def callers(self, qname: str) -> set[str]:
        """Project functions whose bodies call ``qname``."""
        return set(self._callers.get(qname, set()))

    def reachable_from(self, qname: str) -> set[str]:
        """Transitive closure of :meth:`callees` (``qname`` excluded)."""
        seen: set[str] = set()
        frontier = [qname]
        while frontier:
            current = frontier.pop()
            for callee in self.callees(current):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        seen.discard(qname)
        return seen

    def importers(self, module_name: str) -> set[str]:
        """Modules that import ``module_name`` (direct edges only)."""
        return {
            mod.name
            for mod in self.modules.values()
            if module_name in mod.imports
        }

    # ----- resolution -----------------------------------------------------

    def resolve_class(self, module: ModuleGraphNode, name: str) -> Optional[ClassNode]:
        """Resolve a (possibly dotted or aliased) name to a project class."""
        if name in module.classes:
            return module.classes[name]
        target = self._expand_alias(module, name)
        if target is None:
            return None
        return self.classes.get(target)

    def _expand_alias(self, module: ModuleGraphNode, dotted: str) -> Optional[str]:
        """Fully-qualify ``dotted`` through the module's import aliases."""
        head, _, rest = dotted.partition(".")
        target = module.aliases.get(head)
        if target is None:
            return None
        return target + "." + rest if rest else target

    def resolve_call(
        self,
        module: ModuleGraphNode,
        dotted: str,
        func: Optional[FunctionNode] = None,
    ) -> Optional[FunctionNode]:
        """Best-effort resolution of a dotted callee to a project function.

        Handles, in order: local functions, ``self.method``,
        ``self.attr.method`` (through inferred attribute types),
        ``typed_local.method`` (through parameter annotations and
        constructor assignments) and ``alias.path.function``.
        """
        parts = dotted.split(".")
        cls = self._enclosing_class(func)
        # Plain local name: module function or (rarely) a class.
        if len(parts) == 1:
            qname = module.functions.get(parts[0])
            if qname is not None:
                return self.functions.get(qname)
            return self._resolve_aliased(module, dotted)
        if parts[0] == "self" and cls is not None:
            if len(parts) == 2:
                return self._method(cls, parts[1])
            if len(parts) == 3:
                attr_cls = self._attr_class(cls, parts[1])
                if attr_cls is not None:
                    return self._method(attr_cls, parts[2])
            return None
        if len(parts) == 2 and func is not None:
            local_cls = self._local_type(module, func, parts[0])
            if local_cls is not None:
                return self._method(local_cls, parts[1])
        return self._resolve_aliased(module, dotted)

    def _resolve_aliased(
        self, module: ModuleGraphNode, dotted: str
    ) -> Optional[FunctionNode]:
        target = self._expand_alias(module, dotted)
        if target is None:
            return None
        if target in self.functions:
            return self.functions[target]
        # ``alias.func`` where alias names a module: look the function up
        # in that module's symbol table (covers ``Class.method`` too).
        mod_name, _, local = target.rpartition(".")
        mod = self.modules.get(mod_name)
        if mod is not None and local in mod.functions:
            return self.functions.get(mod.functions[local])
        # ``alias.Class.method``.
        parts = target.split(".")
        if len(parts) >= 3:
            mod = self.modules.get(".".join(parts[:-2]))
            if mod is not None:
                cls = mod.classes.get(parts[-2])
                if cls is not None:
                    return self._method(cls, parts[-1])
        return None

    def _enclosing_class(self, func: Optional[FunctionNode]) -> Optional[ClassNode]:
        if func is None or func.cls is None:
            return None
        return func.module.classes.get(func.cls)

    def _method(self, cls: ClassNode, name: str) -> Optional[FunctionNode]:
        """Look a method up in ``cls``, then one level of project bases."""
        qname = cls.methods.get(name)
        if qname is not None:
            return self.functions.get(qname)
        for base in cls.bases:
            base_cls = self.classes.get(base)
            if base_cls is not None and name in base_cls.methods:
                return self.functions.get(base_cls.methods[name])
        return None

    def _attr_class(self, cls: ClassNode, attr: str) -> Optional[ClassNode]:
        qname = cls.attr_types.get(attr)
        if qname is None:
            for base in cls.bases:
                base_cls = self.classes.get(base)
                if base_cls is not None and attr in base_cls.attr_types:
                    qname = base_cls.attr_types[attr]
                    break
        return None if qname is None else self.classes.get(qname)

    def _local_type(
        self, module: ModuleGraphNode, func: FunctionNode, name: str
    ) -> Optional[ClassNode]:
        """Type of a local variable from annotation or ``x = Cls(...)``."""
        types = self.memo(("local_types", func.qname), lambda: _local_types(self, func))
        qname = types.get(name)
        return None if qname is None else self.classes.get(qname)


def _annotation_class(
    project: Project, module: ModuleGraphNode, annotation: Optional[ast.expr]
) -> Optional[str]:
    """Extract the first project class named inside an annotation."""
    if annotation is None:
        return None
    for node in ast.walk(annotation):
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        if name is None:
            continue
        resolved = project.resolve_class(module, name)
        if resolved is not None:
            return resolved.qname
    return None


def _local_types(project: Project, func: FunctionNode) -> dict[str, str]:
    """Local-name -> project-class map for one function body."""
    module = func.module
    out: dict[str, str] = {}
    args = func.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        cls = _annotation_class(project, module, arg.annotation)
        if cls is not None:
            out[arg.arg] = cls
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = dotted_name(node.value.func)
            if callee is None:
                continue
            cls = project.resolve_class(module, callee)
            if cls is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = cls.qname
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            cls_name = _annotation_class(project, module, node.annotation)
            if cls_name is not None:
                out[node.target.id] = cls_name
    return out


# ----------------------------------------------------------------- builder


def _collect_aliases(module: ModuleGraphNode) -> None:
    """Populate alias and import tables from the module's import nodes."""
    package = module.name.rpartition(".")[0]
    for node in ast.walk(module.info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.aliases[local] = target
                module.imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: resolve against this module's package.
                prefix_parts = module.name.split(".")
                cut = node.level
                if not module.info.rel.endswith("__init__.py"):
                    cut += 0
                prefix_parts = prefix_parts[: len(prefix_parts) - node.level]
                base = ".".join(prefix_parts + ([node.module] if node.module else []))
            if not base:
                continue
            module.imports.add(base)
            for alias in node.names:
                local = alias.asname or alias.name
                module.aliases[local] = base + "." + alias.name
    # The module's own package is implicitly importable context.
    if package:
        module.aliases.setdefault("__package__", package)


def _is_awaited(parents: dict[int, ast.AST], call: ast.Call) -> bool:
    parent = parents.get(id(call))
    return isinstance(parent, ast.Await)


def _register_function(
    project: Project,
    module: ModuleGraphNode,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: Optional[ClassNode],
) -> None:
    local = node.name if cls is None else "%s.%s" % (cls.name, node.name)
    qname = "%s.%s" % (module.name, local)
    func = FunctionNode(
        qname=qname,
        name=node.name,
        module=module,
        node=node,
        cls=None if cls is None else cls.name,
        is_async=isinstance(node, ast.AsyncFunctionDef),
    )
    project.functions[qname] = func
    module.functions[local] = qname
    if cls is None:
        # Plain-name resolution (``helper()``) needs the bare name too.
        module.functions.setdefault(node.name, qname)
    else:
        cls.methods[node.name] = qname


def _collect_symbols(project: Project, module: ModuleGraphNode) -> None:
    """Register top-level functions, classes and their methods."""
    for node in module.info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _register_function(project, module, node, None)
        elif isinstance(node, ast.ClassDef):
            cls_qname = "%s.%s" % (module.name, node.name)
            cls = ClassNode(
                qname=cls_qname, name=node.name, module=module, node=node
            )
            module.classes[node.name] = cls
            project.classes[cls_qname] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _register_function(project, module, item, cls)


def _resolve_bases_and_attrs(project: Project, module: ModuleGraphNode) -> None:
    for cls in module.classes.values():
        for base in cls.node.bases:
            name = dotted_name(base)
            if name is None:
                continue
            resolved = project.resolve_class(module, name)
            cls.bases.append(resolved.qname if resolved is not None else name)
        for item in cls.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(item):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    callee = dotted_name(node.value.func)
                    if callee is None:
                        continue
                    attr_cls = project.resolve_class(module, callee)
                    if attr_cls is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cls.attr_types[target.attr] = attr_cls.qname
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr_name = _annotation_class(project, module, node.annotation)
                        if attr_name is not None:
                            cls.attr_types[target.attr] = attr_name


def _function_body_calls(
    func: FunctionNode,
) -> Iterator[tuple[ast.Call, dict[int, ast.AST]]]:
    """Calls belonging to ``func``'s body, nested defs excluded.

    Lambdas stay in — they execute in the enclosing function's dynamic
    context for every rule that cares (blocking, retries, taint).
    """
    parents: dict[int, ast.AST] = {}

    def visit(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from visit(child)

    for call in visit(func.node):
        yield call, parents


def _collect_calls(project: Project, module: ModuleGraphNode) -> None:
    for local in module.functions.values():
        func = project.functions[local]
        if func.module is not module or func.calls:
            continue
        for call, parents in _function_body_calls(func):
            dotted = dotted_name(call.func)
            target: Optional[str] = None
            if dotted is not None:
                resolved = project.resolve_call(module, dotted, func)
                if resolved is not None:
                    target = resolved.qname
            func.calls.append(
                CallSite(
                    node=call,
                    dotted=dotted,
                    target=target,
                    awaited=_is_awaited(parents, call),
                )
            )
            if target is not None:
                project._callers.setdefault(target, set()).add(func.qname)


def build_project(modules: list["ModuleInfo"]) -> Project:
    """Fold parsed modules into one :class:`Project` (two passes)."""
    project = Project()
    graph_nodes: list[ModuleGraphNode] = []
    for info in modules:
        node = ModuleGraphNode(info=info, name=module_name_for(info.rel))
        project.modules[node.name] = node
        project.modules_by_rel[info.rel] = node
        graph_nodes.append(node)
    # Pass 1: aliases and symbols (resolution needs the full table).
    for node in graph_nodes:
        _collect_aliases(node)
    for node in graph_nodes:
        _collect_symbols(project, node)
    # Pass 2: bases, attribute types, then call edges.
    for node in graph_nodes:
        _resolve_bases_and_attrs(project, node)
    for node in graph_nodes:
        _collect_calls(project, node)
    return project
