"""RES-001: every acquired segment/pool/ledger is released on all paths.

The crash-safety story of the shared-memory data plane (PR 6) rests on
an ownership protocol: whoever calls ``create_segment`` must reach
``release_segment`` on *every* path out of the function — normal
return, early return, and any exception raised between acquire and
release — or the segment outlives the process and leaks kernel-backed
memory until reboot.  The same discipline applies to ``Pool`` handles
and ledger leases.  The chaos suite samples these paths; this rule
proves them, using the CFG from :mod:`repro.analysis.flow`:

1. find acquire calls (config's ``resource_acquires`` map) whose result
   binds to a plain local name;
2. skip bindings that **escape** — stored to ``self``/a container,
   returned, yielded, or passed to a call other than a release — since
   ownership transferred and release happens elsewhere (the pinned
   twiddle/point segments in ``backend/parallel.py`` are exactly this);
3. find release calls on that name (``release_segment(seg)``,
   ``seg.close()``) and ``with``-statements using the binding as a
   context manager;
4. report when :meth:`FlowGraph.any_path_avoids` finds a path from the
   acquire's *normal successors* to EXIT that touches no release node.
   Starting from the successors matters: an exception raised by the
   acquire itself means nothing was acquired.

The CFG overapproximates paths, so the rule can flag a leak a branch
condition actually prevents — in this tree, wrapping the release in
``try``/``finally`` (the idiom everywhere in ``backend/parallel.py``)
is both the fix and the proof.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.astutil import dotted_name, lexical_nodes
from repro.analysis.findings import Finding
from repro.analysis.flow import FlowGraph, build_flow
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.graph import Project


def _acquire_release_map(config: "AnalysisConfig") -> dict[str, tuple[str, ...]]:
    return dict(config.resource_acquires)


def _call_suffix(dotted: str) -> str:
    """Last dotted component (``_shm.create_segment`` → ``create_segment``)."""
    return dotted.rpartition(".")[2]


def _mentions_object(expr: ast.AST, name: str) -> bool:
    """Does the *object itself* (not a derived attribute read) flow out?

    ``seg`` in a tuple escapes; ``seg.name`` / ``seg.buf[...]`` are
    derived values — a worker given the segment's *name* attaches its
    own handle, release ownership stays here.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            continue  # attribute read: derived value only
        if isinstance(node, ast.Name) and node.id == name:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


class _Acquire:
    """One ``name = acquire(...)`` binding inside a function."""

    def __init__(self, stmt: ast.stmt, call: ast.Call, name: str, releases: tuple[str, ...]):
        self.stmt = stmt
        self.call = call
        self.name = name
        self.releases = releases


class ResourceRelease(Rule):
    """RES-001: acquires must reach a release on every CFG path."""

    rule_id = "RES-001"
    title = "Acquired resource not released on all paths"

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        if not any(module.rel.startswith(s) for s in config.resource_scopes):
            return
        acquire_map = _acquire_release_map(config)
        for func in module.functions:
            yield from self._check_function(module, func, acquire_map)

    # ----- per-function analysis ------------------------------------------

    def _check_function(
        self,
        module: "ModuleInfo",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        acquire_map: dict[str, tuple[str, ...]],
    ) -> Iterator[Finding]:
        acquires = list(self._find_acquires(func, acquire_map))
        if not acquires:
            return
        graph: Optional[FlowGraph] = None
        for acq in acquires:
            if self._escapes(func, acq):
                continue
            if graph is None:
                graph = build_flow(func)
            start = graph.node_for(acq.stmt)
            if start is None:
                continue
            release_nodes = self._release_nodes(func, graph, acq)
            if self._leaks(graph, start, release_nodes):
                yield self.finding(
                    module,
                    acq.call.lineno,
                    acq.call.col_offset,
                    "'%s' acquired by %s() at line %d is not released on "
                    "all paths (expected %s on every exit, including "
                    "exceptional ones — use try/finally or a context manager)"
                    % (
                        acq.name,
                        _call_suffix(dotted_name(acq.call.func) or "?"),
                        acq.call.lineno,
                        " or ".join(sorted(set(acq.releases))),
                    ),
                )

    def _find_acquires(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        acquire_map: dict[str, tuple[str, ...]],
    ) -> Iterator[_Acquire]:
        for stmt in lexical_nodes(func):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            dotted = dotted_name(value.func)
            if dotted is None:
                continue
            releases = acquire_map.get(_call_suffix(dotted))
            if releases is None:
                continue
            # Only plain-name bindings are tracked; attribute/subscript
            # and tuple targets transfer ownership out of the function
            # (an escape by definition).
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                yield _Acquire(stmt, value, stmt.targets[0].id, releases)

    def _escapes(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, acq: _Acquire
    ) -> bool:
        """Did ownership of ``acq.name`` leave this function?

        Escapes: re-assignment into an attribute/subscript, ``return``,
        ``yield``, or being passed as an argument to any call that is
        not one of the acquire's release leaves.  (``with seg:`` and
        ``release(seg)`` are the non-escaping uses.)
        """
        name = acq.name
        release_leaves = set(acq.releases)
        for node in lexical_nodes(func):
            if isinstance(node, ast.Assign):
                # `self.segs[k] = seg` / `self.seg = seg` / `x = (o, seg)`
                # stored into an attribute/subscript: ownership moved to
                # the container's owner.
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
                ) and _mentions_object(node.value, name):
                    return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _mentions_object(node.value, name):
                    return True
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                leaf = _call_suffix(callee) if callee is not None else None
                if leaf in release_leaves:
                    continue
                # Method call *on* the binding is a use, not an escape.
                if callee is not None and callee.startswith(name + "."):
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _mentions_object(arg, name):
                        return True
        return False

    def _release_nodes(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        graph: FlowGraph,
        acq: _Acquire,
    ) -> set[int]:
        """CFG nodes whose statements release ``acq.name``."""
        release_leaves = set(acq.releases)
        out: set[int] = set()
        for stmt in lexical_nodes(func):
            if not isinstance(stmt, ast.stmt):
                continue
            index = graph.node_for(stmt)
            if index is None:
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                # `with seg:` / `with closing(seg):` guarantees __exit__.
                for item in stmt.items:
                    if any(
                        isinstance(n, ast.Name) and n.id == acq.name
                        for n in ast.walk(item.context_expr)
                    ):
                        out.add(index)
                continue
            for call in (n for n in ast.walk(stmt) if isinstance(n, ast.Call)):
                callee = dotted_name(call.func)
                if callee is None:
                    continue
                leaf = _call_suffix(callee)
                if leaf not in release_leaves:
                    continue
                # Either `release(seg)` or `seg.release()`.
                receiver_match = callee == "%s.%s" % (acq.name, leaf)
                arg_match = any(
                    isinstance(a, ast.Name) and a.id == acq.name for a in call.args
                )
                if receiver_match or arg_match:
                    out.add(index)
                    break
        return out

    def _leaks(self, graph: FlowGraph, start: int, release_nodes: set[int]) -> bool:
        if not release_nodes:
            return True
        # Ask from each *normal* successor of the acquire statement: the
        # exception edge out of the acquire itself means nothing was
        # acquired, so that path is excluded.  Release nodes are
        # absorbing inside any_path_avoids.
        for succ in graph.normal_succs(start):
            if succ in release_nodes:
                continue
            if succ == graph.exit:
                return True
            if graph.any_path_avoids(succ, release_nodes):
                return True
        return False
