"""FLD-001 — field arithmetic hygiene.

Two classes of silent-corruption bug:

- **Literal moduli.**  ``x % 21888242871839275222246405745257275088...``
  duplicates the BN254 modulus as an unnamed constant; one mistyped
  digit produces values that are *usually* right (every intermediate
  smaller than the typo'd modulus is untouched) and catastrophically
  wrong on the tail distribution.  All reductions must reference
  ``repro.field.fr.MODULUS`` / ``repro.curve.fq.FIELD_MODULUS``.
- **Floats.**  Field elements are exact integers; a float sneaking into
  protocol code (a ``/`` instead of a modular inverse, a ``float()``
  cast, a ``0.5`` literal) silently loses precision above 2**53.  Floats
  are confined to the measurement layers (``costmodel/``, ``telemetry/``,
  ``apps/``) and the fixed-point encoding boundary
  (``gadgets/fixedpoint.py`` and friends), whose entire job is
  converting real-valued inputs into field elements.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo


class FieldHygiene(Rule):
    rule_id = "FLD-001"
    title = "no literal moduli, no floats outside the measurement layers"

    def _float_allowed(self, module: "ModuleInfo", config: "AnalysisConfig") -> bool:
        if module.rel in config.float_allowed_files:
            return True
        return module.rel.startswith(tuple(config.float_allowed_dirs))

    def check(self, module: "ModuleInfo", config: "AnalysisConfig") -> Iterator[Finding]:
        float_allowed = self._float_allowed(module, config)
        floor = config.literal_modulus_floor
        for node in ast.walk(module.tree):
            # x % <huge literal>: a hand-inlined modulus.
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                right = node.right
                if (
                    isinstance(right, ast.Constant)
                    and isinstance(right.value, int)
                    and right.value >= floor
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "arithmetic modulo a literal %d-bit constant — use the "
                        "named modulus (repro.field.fr.MODULUS or "
                        "repro.curve.fq.FIELD_MODULUS)" % right.value.bit_length(),
                    )
            # pow(x, y, <huge literal>): same bug through the three-arg pow.
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "pow"
                and len(node.args) == 3
                and isinstance(node.args[2], ast.Constant)
                and isinstance(node.args[2].value, int)
                and node.args[2].value >= floor
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "pow(..., ..., <literal %d-bit modulus>) — use the named "
                    "modulus constant" % node.args[2].value.bit_length(),
                )
            elif float_allowed:
                continue
            elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "float literal %r in field/protocol module %r (floats lose "
                    "exactness above 2**53; keep them in costmodel/apps/"
                    "telemetry or the fixed-point boundary)"
                    % (node.value, module.rel),
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "float() conversion in field/protocol module %r" % module.rel,
                )
