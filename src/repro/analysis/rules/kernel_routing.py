"""ENG-001 — kernel routing and kernel accountability.

Two invariants from the compute-backend architecture (PR 1-3):

- **Protocol modules route through the engine.**  ``kzg/``, ``plonk/``
  and ``groth16/`` must not import NTT/MSM/pairing internals from
  ``repro.field.ntt`` / ``repro.curve.msm`` / ``repro.curve.pairing``;
  a direct call bypasses backend selection, the engine caches (SRS
  Jacobian views, coset-eval memo, prepared-G2 LRU) *and* the telemetry
  counters, so the parallel backend silently stops applying and the
  metrics lie.  Pure constants (``COSET_SHIFT``) are exempt.
- **Every engine kernel counts AND times.**  Each public kernel method
  on an :class:`repro.backend.engine.Engine` subclass must contain both
  a counter/histogram recording call (``_tel.counter``, ``_record_*``,
  ...) *and* a ``telemetry.kernel_timer`` call — the cache-accounting
  tests treat the counters as the source of truth, and the telemetry
  CLI's hot-kernel table ranks kernels by the timer's
  ``engine.kernel.seconds`` histogram; a kernel that forgets either
  undercounts (or un-times) every backend.
- **The contiguous data plane is engine-internal** (PR 6).  Protocol
  layers (``kzg/``, ``plonk/``, ``groth16/``, ``core/``) must not import
  the packed-representation internals (``repro.field.frvec``,
  ``repro.backend.shm``): the cell layout and shared-memory segment
  ownership rules belong to the backend, and a protocol module that
  unpacks cells itself would pin the layout across layers.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo

#: Call shapes that count as "records telemetry": the engine's module
#: aliases (``_tel.counter`` / ``telemetry.histogram``) and its local
#: ``_record_ntt`` / ``_record_cache`` helpers.
_RECORD_ATTRS = frozenset({"counter", "histogram"})
_RECORD_PREFIX = "_record_"


class KernelRouting(Rule):
    rule_id = "ENG-001"
    title = "protocol code routes kernels through the engine; kernels record telemetry"

    def check(self, module: "ModuleInfo", config: "AnalysisConfig") -> Iterator[Finding]:
        if module.rel.startswith(tuple(config.protocol_scopes)):
            yield from self._check_protocol_imports(module, config)
        if module.rel.startswith(tuple(config.substrate_scopes)):
            yield from self._check_substrate_imports(module, config)
        if module.rel.startswith(tuple(config.backend_scopes)):
            yield from self._check_kernel_telemetry(module, config)

    # ----- protocol side --------------------------------------------------

    def _check_protocol_imports(
        self, module: "ModuleInfo", config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in config.banned_kernel_modules:
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            "protocol module %r imports kernel module %r directly "
                            "— route through the compute engine (engine.ntt / "
                            "engine.msm_g1 / engine.pairing_check)"
                            % (module.rel, alias.name),
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module not in config.banned_kernel_modules:
                    continue
                for alias in node.names:
                    if alias.name in config.allowed_kernel_names:
                        continue
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "protocol module %r imports %r from kernel module %r — "
                        "route through the compute engine so backend selection, "
                        "caches and telemetry apply"
                        % (module.rel, alias.name, node.module),
                    )

    def _check_substrate_imports(
        self, module: "ModuleInfo", config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                # Catch both spellings: ``from repro.field.frvec import X``
                # and ``from repro.field import frvec``.
                names = [node.module] if node.module else []
                if node.module:
                    names += ["%s.%s" % (node.module, a.name) for a in node.names]
            else:
                continue
            for name in names:
                if name in config.substrate_internal_modules:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "module %r imports contiguous-representation internals %r "
                        "— the packed data plane is engine-internal; pass plain "
                        "lists to the compute engine and let the backend pack"
                        % (module.rel, name),
                    )

    # ----- backend side ---------------------------------------------------

    def _kernel_accounting(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        config: "AnalysisConfig",
    ) -> tuple[bool, bool]:
        """``(counts, times)`` — which halves of the contract the body has."""
        counts = times = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            leaf = callee.split(".")[-1]
            if (leaf in _RECORD_ATTRS and "." in callee) or leaf.startswith(
                _RECORD_PREFIX
            ):
                counts = True
            if leaf in config.kernel_timer_calls:
                times = True
            if counts and times:
                break
        return counts, times

    def _check_kernel_telemetry(
        self, module: "ModuleInfo", config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name not in config.kernel_methods:
                    continue
                counts, times = self._kernel_accounting(item, config)
                if not counts:
                    yield self.finding(
                        module,
                        item.lineno,
                        item.col_offset,
                        "engine kernel %s.%s records no telemetry counter — "
                        "every public kernel must count its calls so the "
                        "metrics registry stays the source of truth"
                        % (node.name, item.name),
                    )
                if not times:
                    yield self.finding(
                        module,
                        item.lineno,
                        item.col_offset,
                        "engine kernel %s.%s never times itself — every public "
                        "kernel must wrap its dispatch in telemetry.kernel_timer "
                        "so the hot-kernel report can rank kernels by wall-clock"
                        % (node.name, item.name),
                    )
