"""DET-001 — prover/verifier/transcript modules must be deterministic.

Proof systems tolerate randomness only at *designated* sampling sites
(blinding factors, trapdoors — all funnelled through
``field/fr.py:random_scalar``); anywhere else, a stray ``random`` or
wall-clock read silently breaks the reproducibility the backend
equivalence tests rely on (parallel == serial bit-identity) and, in the
transcript path, can split prover and verifier views entirely.  This
rule bans imports of ``random``/``secrets``/``uuid`` and calls to
clock/entropy sources inside the deterministic scope, with a per-file
allowlist for the designated sampling sites.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo


class Determinism(Rule):
    rule_id = "DET-001"
    title = "no entropy or clock sources on the prover/verifier path"

    def _in_scope(self, module: "ModuleInfo", config: "AnalysisConfig") -> bool:
        if module.rel in config.deterministic_allowed_files:
            return False
        return module.rel.startswith(tuple(config.deterministic_scopes))

    def check(self, module: "ModuleInfo", config: "AnalysisConfig") -> Iterator[Finding]:
        if not self._in_scope(module, config):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in config.nondeterministic_imports:
                        yield self._import_finding(module, node, alias.name, config)
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.module in config.nondeterministic_imports or (
                    root in config.nondeterministic_imports and node.level == 0
                ):
                    yield self._import_finding(module, node, node.module or root, config)
                elif node.module and node.level == 0:
                    # ``from repro import faults`` names the banned module
                    # through its parent package; join each alias to catch
                    # the submodule-import spelling too.
                    for alias in node.names:
                        joined = "%s.%s" % (node.module, alias.name)
                        if joined in config.nondeterministic_imports:
                            yield self._import_finding(module, node, joined, config)
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                for banned in config.nondeterministic_calls:
                    if callee == banned.rstrip(".") or callee.startswith(banned):
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            "nondeterministic call %r in deterministic module %r "
                            "(route randomness through field/fr.py:random_scalar)"
                            % (callee, module.rel),
                        )
                        break

    def _import_finding(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        name: str,
        config: "AnalysisConfig",
    ) -> Finding:
        return self.finding(
            module,
            node.lineno,
            node.col_offset,
            "import of nondeterministic module %r in deterministic module %r "
            "(allowed sampling sites: %s)"
            % (name, module.rel, ", ".join(sorted(config.deterministic_allowed_files))),
        )
