"""SEC-001 — secret material must not leak through observable channels.

The paper's privacy guarantee is only as strong as the weakest output
path: a witness value interpolated into an exception message ends up in
logs; a decryption key attached to a telemetry span ends up in trace
exports; a blinding factor in a benchmark JSON payload ends up in a CI
artifact.  Following zkay's lead (PAPERS.md) this is enforced
*statically*: identifiers matching the secret lexicon (see
:class:`repro.analysis.config.AnalysisConfig`) are tainted, taint
propagates through simple same-function assignments, and any tainted
expression reaching one of the sinks below is a finding:

- ``raise Exc(f"... {secret} ...")`` (any formatting style),
- ``telemetry.span(..., attr=secret)`` / ``sp.set_attr(s)`` / ``set_attrs``,
- ``print(secret, ...)``,
- ``json.dump(s)`` payloads (the benchmark emission path).

With the project graph (zklint v2) taint additionally propagates **one
call level**: for every call that resolves to a function defined in the
tree, the callee's parameters are classified as *leaky* when the
parameter value reaches a sink inside the callee (memoised per
project).  Passing a secret-named argument into a leaky position is
then a finding at the call site — catching the
``fail(diag)``-forwards-to-``raise`` shape a per-module pass cannot
see.  Parameters that are themselves secret-named are excluded (the
intraprocedural pass already reports inside the callee).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.astutil import assigned_names, dotted_name, lexical_nodes
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.graph import FunctionNode, Project

_ATTR_SINKS = frozenset({"set_attr", "set_attrs"})

#: Calls whose results reveal nothing about a secret argument: structure,
#: not content.  ``len(plaintext)`` in a span attribute is public metadata
#: (the ciphertext block count is already on chain); ``str(key)`` is not.
_SANITIZERS = frozenset({"len", "bool", "type", "isinstance", "id"})


def _walk_value_flow(expr: ast.AST, through_calls: bool) -> Iterator[ast.AST]:
    """Walk ``expr`` yielding nodes the *value* of which flows onward.

    With ``through_calls=False``, call subtrees are skipped entirely: a
    function's return value is not assumed to reveal its secret inputs —
    ``prove(pk, witness)`` returns a zero-knowledge proof, which is the
    whole point.  With ``through_calls=True`` (sink checks), calls are
    descended *except* the :data:`_SANITIZERS`, so ``str(key)`` in an
    f-string still counts and ``len(plaintext)`` does not.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            leaf = callee.split(".")[-1] if callee else ""
            if not through_calls or leaf in _SANITIZERS:
                continue
            stack.extend(node.args)
            stack.extend(kw.value for kw in node.keywords)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class SecretLeakage(Rule):
    rule_id = "SEC-001"
    title = "secret identifiers must not reach exceptions, telemetry or payloads"

    # ----- taint ----------------------------------------------------------

    def _is_secret_identifier(self, name: str, config: "AnalysisConfig") -> bool:
        last = name.split(".")[-1].lower()
        if last in config.secret_exact:
            return True
        return any(token in config.secret_tokens for token in last.split("_"))

    def _secret_names(
        self,
        expr: ast.AST,
        tainted: set[str],
        config: "AnalysisConfig",
        through_calls: bool = True,
        use_lexicon: bool = True,
    ) -> list[str]:
        """Secret identifiers whose *values* flow out of ``expr``.

        With ``use_lexicon=False`` only the explicit taint set matches —
        the mode the interprocedural leaky-parameter computation uses to
        track an arbitrary (non-secret-named) parameter.
        """
        found: list[str] = []
        for node in _walk_value_flow(expr, through_calls):
            if isinstance(node, ast.Name):
                if node.id in tainted or (
                    use_lexicon and self._is_secret_identifier(node.id, config)
                ):
                    found.append(node.id)
            elif isinstance(node, ast.Attribute):
                if use_lexicon and self._is_secret_identifier(node.attr, config):
                    found.append(dotted_name(node) or node.attr)
        return found

    # ----- sinks ----------------------------------------------------------

    def check(self, module: "ModuleInfo", config: "AnalysisConfig") -> Iterator[Finding]:
        for func in module.functions:
            yield from self._check_function(module, func, config)

    def _check_function(
        self, module: "ModuleInfo", func: ast.AST, config: "AnalysisConfig"
    ) -> Iterator[Finding]:
        tainted: set[str] = set()
        for node in lexical_nodes(func):
            # One-level taint propagation through plain assignments, in
            # lexical order: ``msg = f"...{witness}"; raise E(msg)``.
            if isinstance(node, ast.Assign):
                if self._secret_names(node.value, tainted, config, through_calls=False):
                    for target in node.targets:
                        tainted.update(assigned_names(target))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                yield from self._check_raise(module, node, tainted, config)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, tainted, config)

    def _leak(
        self, module: "ModuleInfo", node: ast.AST, names: list[str], sink: str
    ) -> Finding:
        return self.finding(
            module,
            node.lineno,
            node.col_offset,
            "secret identifier %r flows into %s (witness/key material must "
            "never reach observable outputs)" % (sorted(set(names))[0], sink),
        )

    def _check_raise(
        self,
        module: "ModuleInfo",
        node: ast.Raise,
        tainted: set[str],
        config: "AnalysisConfig",
    ) -> Iterator[Finding]:
        exc = node.exc
        args: list[ast.AST] = []
        if isinstance(exc, ast.Call):
            args = list(exc.args) + [kw.value for kw in exc.keywords]
        elif exc is not None:
            args = [exc]
        names: list[str] = []
        for arg in args:
            names.extend(self._secret_names(arg, tainted, config))
        if names:
            yield self._leak(module, node, names, "an exception message")

    def _check_call(
        self,
        module: "ModuleInfo",
        call: ast.Call,
        tainted: set[str],
        config: "AnalysisConfig",
    ) -> Iterator[Finding]:
        callee = dotted_name(call.func)
        if callee is None:
            return
        leaf = callee.split(".")[-1]

        if leaf == "print":
            names = self._names_in(call.args + [kw.value for kw in call.keywords], tainted, config)
            if names:
                yield self._leak(module, call, names, "print output")
            return

        if leaf == "span" and (callee == "span" or callee.endswith("telemetry.span")):
            # telemetry.span("name", attr=value, ...): attributes only.
            names = self._names_in(
                call.args[1:] + [kw.value for kw in call.keywords], tainted, config
            )
            if names:
                yield self._leak(module, call, names, "a telemetry span attribute")
            return

        if leaf in _ATTR_SINKS and isinstance(call.func, ast.Attribute):
            values = list(call.args) + [kw.value for kw in call.keywords]
            if leaf == "set_attr" and len(call.args) >= 2:
                values = list(call.args[1:]) + [kw.value for kw in call.keywords]
            names = self._names_in(values, tainted, config)
            if names:
                yield self._leak(module, call, names, "a telemetry span attribute")
            return

        if callee in ("json.dump", "json.dumps"):
            names = self._names_in(
                call.args + [kw.value for kw in call.keywords], tainted, config
            )
            if names:
                yield self._leak(module, call, names, "a JSON payload")

    def _names_in(
        self, exprs: list[ast.AST], tainted: set[str], config: "AnalysisConfig"
    ) -> list[str]:
        names: list[str] = []
        for expr in exprs:
            names.extend(self._secret_names(expr, tainted, config))
        return names

    # ----- interprocedural (one call level through the project graph) -----

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        yield from self.check(module, config)
        graph_module = project.modules_by_rel.get(module.rel)
        if graph_module is None:
            return
        for qname in set(graph_module.functions.values()):
            caller = project.functions[qname]
            if caller.module is not graph_module:
                continue
            for site in caller.calls:
                if site.target is None:
                    continue
                callee = project.functions.get(site.target)
                if callee is None:
                    continue
                leaky = self._leaky_params(callee, config, project)
                if not leaky:
                    continue
                for param, arg in self._bind_args(site.node, callee):
                    sink = leaky.get(param)
                    if sink is None:
                        continue
                    names = self._secret_names(arg, set(), config, through_calls=False)
                    if names:
                        yield self._leak(
                            module,
                            site.node,
                            names,
                            "%s via parameter '%s' of '%s'"
                            % (sink, param, callee.qname),
                        )

    def _bind_args(
        self, call: ast.Call, callee: "FunctionNode"
    ) -> Iterator[tuple[str, ast.AST]]:
        """Pair call arguments with the callee's parameter names."""
        params = callee.params
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                yield params[index], arg
        for kw in call.keywords:
            if kw.arg is not None:
                yield kw.arg, kw.value

    def _leaky_params(
        self, callee: "FunctionNode", config: "AnalysisConfig", project: "Project"
    ) -> dict[str, str]:
        """Parameters of ``callee`` that reach a sink when tainted.

        Memoised on the project; secret-named parameters are excluded —
        those already fire intraprocedurally inside the callee.
        """

        def compute() -> dict[str, str]:
            out: dict[str, str] = {}
            for param in callee.params:
                if self._is_secret_identifier(param, config):
                    continue
                sink = self._taint_reaches_sink(callee.node, {param}, config)
                if sink is not None:
                    out[param] = sink
            return out

        return project.memo(("sec_leaky", callee.qname), compute)

    def _taint_reaches_sink(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        tainted: set[str],
        config: "AnalysisConfig",
    ) -> Optional[str]:
        """First sink the taint set reaches inside ``func``, if any."""
        live = set(tainted)

        def flows(expr: ast.AST, through_calls: bool = True) -> bool:
            return bool(
                self._secret_names(
                    expr, live, config, through_calls=through_calls, use_lexicon=False
                )
            )

        for node in lexical_nodes(func):
            if isinstance(node, ast.Assign):
                if flows(node.value, through_calls=False):
                    for target in node.targets:
                        live.update(assigned_names(target))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                args: list[ast.AST] = (
                    list(exc.args) + [kw.value for kw in exc.keywords]
                    if isinstance(exc, ast.Call)
                    else [exc]
                )
                if any(flows(a) for a in args):
                    return "an exception message"
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                leaf = callee.split(".")[-1] if callee else ""
                values = list(node.args) + [kw.value for kw in node.keywords]
                if leaf == "print" and any(flows(v) for v in values):
                    return "print output"
                if leaf in _ATTR_SINKS and any(flows(v) for v in values):
                    return "a telemetry span attribute"
                if callee in ("json.dump", "json.dumps") and any(
                    flows(v) for v in values
                ):
                    return "a JSON payload"
        return None
