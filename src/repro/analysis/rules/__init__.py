"""The zklint rule registry.

Each rule is a small class with a ``rule_id``, a one-line ``title`` and a
``check(module, config)`` generator yielding
:class:`~repro.analysis.findings.Finding` objects.  Rules are pure
functions of the parsed module — they never import or execute the code
under analysis — so the suite is safe to run on untrusted trees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.graph import Project


class Rule:
    """Base class: subclasses set ``rule_id``/``title`` and implement check.

    Per-module rules implement :meth:`check`; whole-program rules
    override :meth:`check_with_project` instead and query the
    :class:`~repro.analysis.graph.Project` built in phase one.  The
    engine always calls ``check_with_project`` — the default delegates
    to ``check`` so the original five rules run unchanged.
    """

    rule_id: str = ""
    title: str = ""

    def check(self, module: "ModuleInfo", config: "AnalysisConfig") -> Iterator[Finding]:
        raise NotImplementedError

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        yield from self.check(module, config)

    def finding(
        self, module: "ModuleInfo", line: int, col: int, message: str
    ) -> Finding:
        """Build a finding anchored to ``module`` with a source snippet."""
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(
            rule=self.rule_id,
            path=module.display,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


from repro.analysis.rules.concurrency import AsyncBlocking, AsyncLockHold  # noqa: E402
from repro.analysis.rules.determinism import Determinism  # noqa: E402
from repro.analysis.rules.faultpaths import FaultSiteDiscipline  # noqa: E402
from repro.analysis.rules.field_hygiene import FieldHygiene  # noqa: E402
from repro.analysis.rules.forksafety import ForkSafety  # noqa: E402
from repro.analysis.rules.kernel_routing import KernelRouting  # noqa: E402
from repro.analysis.rules.resources import ResourceRelease  # noqa: E402
from repro.analysis.rules.secrecy import SecretLeakage  # noqa: E402
from repro.analysis.rules.transcript import TranscriptDiscipline  # noqa: E402

#: Every shipped rule, in catalogue order.
ALL_RULES: tuple[Rule, ...] = (
    TranscriptDiscipline(),
    SecretLeakage(),
    Determinism(),
    FieldHygiene(),
    KernelRouting(),
    AsyncBlocking(),
    AsyncLockHold(),
    ResourceRelease(),
    ForkSafety(),
    FaultSiteDiscipline(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "AsyncBlocking",
    "AsyncLockHold",
    "Determinism",
    "FaultSiteDiscipline",
    "FieldHygiene",
    "ForkSafety",
    "KernelRouting",
    "ResourceRelease",
    "SecretLeakage",
    "TranscriptDiscipline",
]
