"""FORK-001: nothing hazardous may exist when the prover pool forks.

The ``ProverPool`` (PR 8) forks workers precisely so they inherit the
warm proving caches copy-on-write.  The flip side of that inheritance:
a fork child also inherits every started thread's locks (frozen
mid-flight — any later acquire deadlocks), a running event loop's
selector fd (two loops multiplexing one epoll set), and open sockets
(two processes reading one TCP stream).  CPython only replays atfork
handlers for its own internals; user state is on us.

The rule finds fork-pool construction sites (``resource``-scope modules
only) and reports hazardous state that is *live at the fork*:

- a hazard call (``threading.Thread``, ``asyncio.get_running_loop``,
  ``socket.socket``, …) **earlier in the same function** whose CFG node
  dominates the fork site — i.e. it is live on every path to the fork
  (this covers the ``self.thread = Thread(...); self.pool = Pool(...)``
  constructor shape, since both live in ``__init__``);
- a fork while **holding a sync lock** (``with self._lock:`` around the
  construction) — the child inherits the lock in the locked state with
  no owner to release it.

Pools stored to ``self`` and constructed in otherwise-clean
``__init__`` bodies — the shipped ``ProverPool`` — pass clean.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.astutil import dotted_name, lexical_nodes
from repro.analysis.findings import Finding
from repro.analysis.flow import build_flow
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.graph import Project


def _matches_prefix(dotted: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        dotted == p or dotted.startswith(p + ".") or dotted.endswith("." + p)
        for p in prefixes
    )


def _is_fork_pool_call(call: ast.Call, config: "AnalysisConfig") -> bool:
    """``get_context("fork").Pool(...)`` / ``mp.Pool(...)`` shapes."""
    dotted = dotted_name(call.func)
    if dotted is None:
        # `multiprocessing.get_context("fork").Pool(n)` has a Call in the
        # receiver chain, so dotted_name returns None; match the leaf.
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in config.fork_pool_calls:
            return True
        return False
    leaf = dotted.rpartition(".")[2]
    return leaf in config.fork_pool_calls


class ForkSafety(Rule):
    """FORK-001: no threads/loops/sockets/held locks across the fork."""

    rule_id = "FORK-001"
    title = "Hazardous state captured across the fork boundary"

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        if not any(module.rel.startswith(s) for s in config.fork_scopes):
            return
        for func in module.functions:
            yield from self._check_function(module, config, func)

    def _check_function(
        self,
        module: "ModuleInfo",
        config: "AnalysisConfig",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        fork_sites = [
            node
            for node in lexical_nodes(func)
            if isinstance(node, ast.Call) and _is_fork_pool_call(node, config)
        ]
        if not fork_sites:
            return
        graph = build_flow(func)
        hazards = list(self._hazard_calls(func, config))
        for fork in fork_sites:
            fork_stmt = self._enclosing_stmt(graph, fork)
            for hazard_call, hazard_label in hazards:
                if hazard_call.lineno >= fork.lineno:
                    continue
                hazard_stmt = self._enclosing_stmt(graph, hazard_call)
                dominated = True
                if fork_stmt is not None and hazard_stmt is not None:
                    dominated = graph.dominates(hazard_stmt, fork_stmt)
                if not dominated:
                    continue
                yield self.finding(
                    module,
                    fork.lineno,
                    fork.col_offset,
                    "fork pool created at line %d with %s live from line %d "
                    "— fork children inherit it in an undefined state"
                    % (fork.lineno, hazard_label, hazard_call.lineno),
                )
            # Fork under a held sync lock: the child inherits a locked
            # lock nobody will ever release.
            lock_line = self._held_lock_line(func, fork)
            if lock_line is not None:
                yield self.finding(
                    module,
                    fork.lineno,
                    fork.col_offset,
                    "fork pool created at line %d while holding the sync "
                    "lock acquired at line %d — the child inherits it "
                    "locked with no owner" % (fork.lineno, lock_line),
                )

    def _hazard_calls(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        config: "AnalysisConfig",
    ) -> Iterator[tuple[ast.Call, str]]:
        for node in lexical_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if _matches_prefix(dotted, config.fork_hazard_calls):
                yield node, "'%s'" % dotted

    def _enclosing_stmt(
        self, graph: object, expr: ast.expr
    ) -> Optional[int]:
        """CFG node for the statement textually containing ``expr``.

        Matched by line containment over lowered statements; fine for the
        dominance query (both calls sit inside simple statements).
        """
        from repro.analysis.flow import FlowGraph

        assert isinstance(graph, FlowGraph)
        best: Optional[int] = None
        for node in graph.nodes:
            if node.stmt is None:
                continue
            end = getattr(node.stmt, "end_lineno", node.stmt.lineno) or node.stmt.lineno
            if node.stmt.lineno <= expr.lineno <= end:
                # Prefer the innermost (latest-starting) match.
                if best is None or node.stmt.lineno >= graph.nodes[best].stmt.lineno:  # type: ignore[union-attr]
                    best = node.index
        return best

    def _held_lock_line(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, fork: ast.Call
    ) -> Optional[int]:
        for node in lexical_nodes(func):
            if not isinstance(node, ast.With):
                continue
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            if not (node.lineno <= fork.lineno <= end):
                continue
            for item in node.items:
                dotted = dotted_name(item.context_expr)
                if dotted is None:
                    continue
                tokens = set(dotted.lower().replace(".", "_").split("_"))
                if tokens & {"lock", "mutex"}:
                    return node.lineno
        return None
