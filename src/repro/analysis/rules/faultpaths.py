"""FLT-002: fault-site calls on driver paths must be recoverable.

PR 5 registered every unreliable boundary — ``chain.transact``,
``storage.put/get``, ``dht.*``, ``msg.*`` — as a fault site the
injection plane can fail deterministically, and gave the exchange
drivers a recovery vocabulary: wrap the call in a
:class:`~repro.faults.retry.RetryPolicy` (``policy.run(lambda: ...)``)
or catch the failure in an explicit abort/refund handler.  The
conservation invariant (no stranded escrow) only holds if *every*
driver-path fault site uses one of the two; a naked ``chain.transact``
that raises mid-exchange strands the escrow in exactly the way the
chaos suite hunts for.

This rule closes the loop statically.  A call whose dotted name ends in
a registered fault-site suffix (``self.chain.transact`` matches
``chain.transact``), in a ``core/``/``service/`` module, is compliant
when any of:

- it sits inside a ``lambda`` or local ``def`` that is passed to a
  ``.run(...)`` method on a retry-ish receiver (identifier tokens
  ``retry``/``policy``/``ABORT_POLICY``/… or a direct
  ``RetryPolicy(...).run`` call);
- it sits inside a ``try`` whose handlers name a fault/abort exception
  (``FaultInjected``, ``ExchangeAborted``, ``ChainError``, or a broad
  ``Exception``) — the abort/refund path;
- the enclosing function *is* the retry machinery itself (``faults/``
  modules are out of scope by construction).

Everything else is a finding.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.graph import Project


def _site_suffix(dotted: str, config: "AnalysisConfig") -> Optional[str]:
    """The registered fault-site suffix this callee matches, if any."""
    for site in config.fault_site_calls:
        if dotted == site or dotted.endswith("." + site):
            return site
        # `dht.*`-style families: `site` may itself be a prefix family
        # like `dht.publish`; exact/suffix match above is enough because
        # the config enumerates the leaves.
    return None


def _identifier_tokens(name: str) -> set[str]:
    return {t for t in name.lower().replace(".", "_").split("_") if t}


class _Parented(ast.NodeVisitor):
    """One pass recording parent links (scopes included)."""

    def __init__(self, tree: ast.AST) -> None:
        self.parents: dict[int, ast.AST] = {}
        stack: list[ast.AST] = [tree]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
                stack.append(child)

    def chain(self, node: ast.AST) -> Iterator[ast.AST]:
        current: Optional[ast.AST] = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))


class FaultSiteDiscipline(Rule):
    """FLT-002: registered fault sites need RetryPolicy or abort handling."""

    rule_id = "FLT-002"
    title = "Fault-site call without retry policy or abort handler"

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        if not any(module.rel.startswith(s) for s in config.fault_discipline_scopes):
            return
        parents = _Parented(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            site = _site_suffix(dotted, config)
            if site is None:
                continue
            if self._is_wrapped(node, parents, config):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                "fault site '%s' called without a RetryPolicy wrapper or "
                "abort/refund handler — a mid-exchange failure here "
                "strands escrow" % site,
            )

    # ----- compliance predicates ------------------------------------------

    def _is_wrapped(
        self, call: ast.Call, parents: _Parented, config: "AnalysisConfig"
    ) -> bool:
        passed_through_callable = False
        for ancestor in parents.chain(call):
            if isinstance(ancestor, ast.Lambda):
                passed_through_callable = True
                continue
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def handed to policy.run(...) — keep climbing
                # to find who receives it; a top-level function boundary
                # without a wrapper below means the site is naked.
                passed_through_callable = True
                continue
            if isinstance(ancestor, ast.Call) and passed_through_callable:
                if self._is_retry_run(ancestor, config):
                    return True
            if isinstance(ancestor, ast.Try) and not passed_through_callable:
                if self._has_abort_handler(ancestor, call, config):
                    return True
        return False

    def _is_retry_run(self, call: ast.Call, config: "AnalysisConfig") -> bool:
        dotted = dotted_name(call.func)
        if dotted is not None:
            leaf = dotted.rpartition(".")[2]
            if leaf != "run":
                return False
            receiver = dotted.rpartition(".")[0]
            if _identifier_tokens(receiver) & config.retry_receiver_tokens:
                return True
            return False
        # `RetryPolicy(...).run(lambda: ...)`: the receiver is a Call, so
        # dotted_name fails; match the attribute leaf + constructor name.
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "run":
            inner = func.value
            if isinstance(inner, ast.Call):
                ctor = dotted_name(inner.func)
                if ctor is not None and (
                    _identifier_tokens(ctor) & config.retry_receiver_tokens
                ):
                    return True
        return False

    def _has_abort_handler(
        self, try_stmt: ast.Try, call: ast.Call, config: "AnalysisConfig"
    ) -> bool:
        # The call must be in the protected body (not in a handler or
        # the finally block, where a second failure has no recovery).
        in_body = any(
            any(n is call for n in ast.walk(stmt)) for stmt in try_stmt.body
        )
        if not in_body:
            return False
        for handler in try_stmt.handlers:
            if handler.type is None:
                return True  # bare except
            for name_node in ast.walk(handler.type):
                name = dotted_name(name_node)
                if name is None:
                    continue
                leaf = name.rpartition(".")[2].lower()
                if leaf in config.abort_handler_tokens:
                    return True
        return False
