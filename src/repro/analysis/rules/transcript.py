"""FS-001 — Fiat-Shamir transcript discipline.

The "frozen heart" bug class: a challenge derived without binding the
preceding prover messages lets a malicious prover grind messages after
seeing the challenge, breaking soundness of the compiled NIZK.  Within
every function that drives a :class:`repro.plonk.transcript.Transcript`,
this rule checks the *absorb/squeeze alternation* statically:

- a ``challenge()`` with no ``append_*`` since the previous challenge
  (or since construction) is flagged — nothing new was bound;
- data absorbed after the final challenge of a function that *owns* its
  transcript is flagged — an absorbed-then-never-challenged tail means
  those messages constrain nothing.

Both checks walk call sites in lexical order, deliberately ignoring
branch structure: prover/verifier transcript schedules in this codebase
are straight-line, and a conservative linear reading keeps the rule
free of path-explosion heuristics.  Sites that squeeze two challenges
back-to-back *by design* (the state-folding in ``challenge()`` makes
consecutive squeezes sound) carry a per-line pragma with justification.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.astutil import (
    assigned_names,
    call_label,
    dotted_name,
    lexical_calls,
    lexical_nodes,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo


def _constructed_receivers(func: ast.AST) -> set[str]:
    """Receivers assigned ``Transcript(...)`` within this function."""
    out: set[str] = set()
    for node in lexical_nodes(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        callee = dotted_name(value.func)
        if callee is None or callee.split(".")[-1] != "Transcript":
            continue
        for target in node.targets:
            out.update(assigned_names(target))
            name = dotted_name(target)
            if name is not None:
                out.add(name)
    return out


class TranscriptDiscipline(Rule):
    rule_id = "FS-001"
    title = "Fiat-Shamir challenges must bind freshly absorbed messages"

    def check(self, module: "ModuleInfo", config: "AnalysisConfig") -> Iterator[Finding]:
        method_names = (
            config.transcript_absorb_methods | config.transcript_challenge_methods
        )
        for func in module.functions:
            constructed = _constructed_receivers(func)
            # events[receiver] = ordered list of ("absorb"|"challenge", call)
            events: dict[str, list[tuple[str, ast.Call]]] = {}
            for call in lexical_calls(func):
                if not isinstance(call.func, ast.Attribute):
                    continue
                method = call.func.attr
                if method not in method_names:
                    continue
                receiver = dotted_name(call.func.value)
                if receiver is None:
                    continue
                if receiver not in constructed and "transcript" not in receiver.lower():
                    continue
                kind = (
                    "challenge"
                    if method in config.transcript_challenge_methods
                    else "absorb"
                )
                events.setdefault(receiver, []).append((kind, call))
            for receiver, sequence in events.items():
                yield from self._check_sequence(
                    module, receiver, sequence, owned=receiver in constructed
                )

    def _check_sequence(
        self,
        module: "ModuleInfo",
        receiver: str,
        sequence: list[tuple[str, ast.Call]],
        owned: bool,
    ) -> Iterator[Finding]:
        # A transcript received as a parameter has unknown history, so the
        # first challenge gets the benefit of the doubt; one constructed
        # here starts with nothing absorbed beyond the domain tag.
        absorbed = not owned
        last_absorb: ast.Call | None = None
        saw_challenge = False
        for kind, call in sequence:
            if kind == "absorb":
                absorbed = True
                last_absorb = call
                continue
            if not absorbed:
                yield self.finding(
                    module,
                    call.lineno,
                    call.col_offset,
                    "challenge %s on %r derived with no absorption since the "
                    "previous challenge (frozen-heart risk: the challenge binds "
                    "no new prover message)" % (call_label(call), receiver),
                )
            absorbed = False
            last_absorb = None
            saw_challenge = True
        if owned and saw_challenge and last_absorb is not None:
            yield self.finding(
                module,
                last_absorb.lineno,
                last_absorb.col_offset,
                "message %s absorbed into %r is never bound by a subsequent "
                "challenge (dangling transcript tail)"
                % (call_label(last_absorb), receiver),
            )
