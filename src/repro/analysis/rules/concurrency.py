"""ASYNC-001 / ASYNC-002: event-loop liveness rules for the service plane.

The marketplace node's liveness argument (one admission loop drives
every session; see ``docs/service_plane.md``) holds only if no
coroutine ever blocks the loop's thread.  A single ``time.sleep`` or
``Pool.join`` inside ``async def`` stalls *every* in-flight exchange —
the chaos suite samples this class of bug; these rules prove its
absence:

- **ASYNC-001** — no blocking call inside ``async def`` in the service
  scope.  Directly-blocking callees (``time.sleep``, sync subprocess /
  socket I/O) match by dotted prefix; method calls like ``pool.apply``
  or ``lock.acquire`` match by (leaf, receiver-token) pairs so that
  ``dict.get`` homonyms stay quiet.  Awaited calls are exempt (awaiting
  ``loop.run_in_executor(None, pool.close)`` is the *fix*, not a
  finding).  With a project graph the rule also follows one level of
  call edges: a sync helper defined in the tree that blocks is reported
  at the coroutine's call site.
- **ASYNC-002** — no ``await`` while holding a synchronous
  ``threading``/``multiprocessing`` lock, whether held via ``with
  self._lock:`` (the attribute's constructor is looked up through the
  project graph) or a naked ``lock.acquire()`` that dominates the
  await.  A sync lock held across a suspension point serialises the
  loop behind whichever thread holds it — the textbook asyncio
  deadlock.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.astutil import dotted_name, lexical_nodes
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.graph import FunctionNode, ModuleGraphNode, Project


def _identifier_tokens(name: str) -> set[str]:
    """Snake-case tokens of the last two dotted components, lowered."""
    parts = name.lower().replace(".", "_").split("_")
    return {p for p in parts if p}


def _receiver_of(dotted: str) -> str:
    """Everything before the final attribute (``self._pool.apply`` →
    ``self._pool``); empty for plain names."""
    head, _, _leaf = dotted.rpartition(".")
    return head


def _blocking_reason(dotted: str, config: "AnalysisConfig") -> Optional[str]:
    """Why a dotted callee blocks, or None when it does not."""
    for prefix in config.blocking_call_prefixes:
        if dotted == prefix or dotted.startswith(prefix + ".") or (
            prefix.endswith(".") and dotted.startswith(prefix)
        ):
            return "'%s' blocks the calling thread" % dotted
    receiver = _receiver_of(dotted)
    if not receiver:
        return None
    leaf = dotted.rpartition(".")[2]
    tokens = _identifier_tokens(receiver)
    for want_leaf, want_token in config.blocking_leaf_receivers:
        if leaf == want_leaf and want_token in tokens:
            return "'%s' blocks (sync %s.%s)" % (dotted, want_token, want_leaf)
    return None


def _in_scope(module: "ModuleInfo", scopes: tuple[str, ...]) -> bool:
    return any(module.rel.startswith(scope) for scope in scopes)


class AsyncBlocking(Rule):
    """ASYNC-001: no blocking calls inside ``async def`` in service code."""

    rule_id = "ASYNC-001"
    title = "Blocking call inside a coroutine stalls the event loop"

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        if not _in_scope(module, config.async_scopes):
            return
        graph_module = project.modules_by_rel.get(module.rel)
        if graph_module is None:
            return
        for qname in set(graph_module.functions.values()):
            func = project.functions[qname]
            if not func.is_async or func.module is not graph_module:
                continue
            yield from self._check_coroutine(module, config, project, func)

    def _check_coroutine(
        self,
        module: "ModuleInfo",
        config: "AnalysisConfig",
        project: "Project",
        func: "FunctionNode",
    ) -> Iterator[Finding]:
        for site in func.calls:
            if site.awaited or site.dotted is None:
                continue
            reason = _blocking_reason(site.dotted, config)
            if reason is not None:
                yield self.finding(
                    module,
                    site.node.lineno,
                    site.node.col_offset,
                    "%s inside 'async def %s'" % (reason, func.name),
                )
                continue
            # One level of interprocedural propagation: a sync project
            # helper that itself blocks is reported here, at the point
            # the coroutine loses the loop.
            if site.target is None:
                continue
            callee = project.functions.get(site.target)
            if callee is None or callee.is_async:
                continue
            for inner in callee.calls:
                if inner.dotted is None:
                    continue
                inner_reason = _blocking_reason(inner.dotted, config)
                if inner_reason is not None:
                    yield self.finding(
                        module,
                        site.node.lineno,
                        site.node.col_offset,
                        "sync helper '%s' called from 'async def %s' blocks: %s"
                        % (callee.name, func.name, inner_reason),
                    )
                    break


class AsyncLockHold(Rule):
    """ASYNC-002: no ``await`` while holding a synchronous lock."""

    rule_id = "ASYNC-002"
    title = "Awaiting while holding a sync lock can deadlock the loop"

    def check_with_project(
        self, module: "ModuleInfo", config: "AnalysisConfig", project: "Project"
    ) -> Iterator[Finding]:
        if not _in_scope(module, config.async_scopes):
            return
        graph_module = project.modules_by_rel.get(module.rel)
        if graph_module is None:
            return
        sync_locks = self._sync_lock_attrs(config, project, graph_module)
        for qname in set(graph_module.functions.values()):
            func = project.functions[qname]
            if not func.is_async or func.module is not graph_module:
                continue
            yield from self._check_coroutine(module, config, func, sync_locks)

    def _sync_lock_attrs(
        self,
        config: "AnalysisConfig",
        project: "Project",
        graph_module: "ModuleGraphNode",
    ) -> set[str]:
        """``self.<attr>``/local names bound to sync-lock constructors.

        The project graph only types attributes whose constructors are
        project classes, so stdlib lock constructors are re-scanned here
        (memoised per module).  Constructor names resolve through the
        module's import aliases, so ``mp.Lock()``, ``threading.Lock()``
        and a bare ``Lock()`` from ``from threading import Lock`` all
        match; ``get_context("fork").Lock()`` matches by leaf + context
        receiver.
        """

        def canonical(callee: str) -> str:
            head, _, rest = callee.partition(".")
            target = graph_module.aliases.get(head)
            if target is None:
                return callee
            return target + "." + rest if rest else target

        def compute() -> set[str]:
            out: set[str] = set()
            for node in ast.walk(graph_module.info.tree):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                callee = dotted_name(node.value.func)
                if callee is None:
                    continue
                full = canonical(callee)
                leafs = {c.rpartition(".")[2] for c in config.sync_lock_constructors}
                is_sync = full in config.sync_lock_constructors or (
                    full.rpartition(".")[2] in leafs
                    and any(
                        tok in _identifier_tokens(full)
                        for tok in ("threading", "multiprocessing", "mp", "ctx", "context")
                    )
                )
                if not is_sync:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        out.add(target.attr)
                    elif isinstance(target, ast.Name):
                        out.add(target.id)
            return out

        return project.memo(("sync_locks", graph_module.name), compute)

    def _check_coroutine(
        self,
        module: "ModuleInfo",
        config: "AnalysisConfig",
        func: "FunctionNode",
        sync_locks: set[str],
    ) -> Iterator[Finding]:
        for node in lexical_nodes(func.node):
            if not isinstance(node, ast.With):
                continue  # `async with aio_lock:` is the correct form
            if not self._holds_sync_lock(node, sync_locks):
                continue
            for inner in lexical_nodes(node):
                if isinstance(inner, ast.Await):
                    yield self.finding(
                        module,
                        inner.lineno,
                        inner.col_offset,
                        "'await' at line %d while holding a sync lock "
                        "acquired at line %d in 'async def %s'"
                        % (inner.lineno, node.lineno, func.name),
                    )
                    break

    def _holds_sync_lock(self, node: ast.With, sync_locks: set[str]) -> bool:
        for item in node.items:
            expr = item.context_expr
            dotted = dotted_name(expr)
            if dotted is None and isinstance(expr, ast.Call):
                dotted = dotted_name(expr.func)
                # `with lock.acquire():` / `with self._lock:` both count;
                # a *constructor* call (`with threading.Lock():`) does too
                # but is vanishingly rare — treated the same.
            if dotted is None:
                continue
            leaf = dotted.rpartition(".")[2]
            tokens = _identifier_tokens(dotted)
            if leaf in sync_locks or (tokens & {"lock", "mutex"}):
                return True
        return False
