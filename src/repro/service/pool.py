"""Persistent warm prover pool for the service node.

CPU-bound pi_k proving is the one step of an exchange that cannot share
the node's event loop without stalling every other request, so it is
dispatched to a pool of long-lived forked worker processes.  The win
over per-call pools is *cache residency*: the parent warms the pi_k
circuit keys (and therefore the SRS Jacobian views and fixed-window
tables inside the engine) **before** forking, so every worker inherits
the warmed caches by copy-on-write and the first proof of each worker is
already a warm proof.  Workers prove with a private *serial* engine —
pool workers are daemonic and may not fork grandchildren, and nesting a
:class:`~repro.backend.parallel.ParallelEngine` inside a pool worker
would try exactly that.

The asyncio bridge is callback-based: ``apply_async`` completion fires
on the pool's result-handler thread, which hops back onto the node's
event loop via ``call_soon_threadsafe`` to resolve the awaited future.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from types import TracebackType
from typing import Any, Optional

from repro import telemetry
from repro.backend.engine import Engine
from repro.core.exchange import build_key_negotiation_circuit, key_negotiation_keys
from repro.core.snark import SnarkContext
from repro.core.tokens import DataAsset
from repro.errors import ProtocolError, ServiceError
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import CircuitBuilder
from repro.plonk.prover import prove
from repro.primitives.hashing import field_hash
from repro.telemetry.metrics import LATENCY_BUCKETS

#: Forked-worker state: populated in the parent immediately before the
#: pool is created so the fork snapshot carries the warmed context.
_WORKER_STATE: dict[str, Any] = {}


def _prove_pik_job(args: tuple) -> tuple:
    """Worker: prove one key negotiation; returns ``(k_c, proof_bytes)``.

    Runs entirely against the forked copies of the parent's SnarkContext
    (circuit keys warm) and a serial engine (kernel caches warm).
    """
    key, key_commitment, key_blinder, k_v, h_v = args
    ctx = _WORKER_STATE["ctx"]
    engine = _WORKER_STATE["engine"]
    if field_hash(k_v) != h_v:
        raise ProtocolError("buyer's h_v does not match the received k_v; aborting")
    k_c = (key + k_v) % R
    builder = CircuitBuilder()
    build_key_negotiation_circuit(
        builder, k_c, key_commitment, h_v, key, key_blinder, k_v
    )
    layout, assignment = builder.compile()
    keys = ctx.keys_for(layout)
    pi_k = prove(keys.pk, assignment, engine=engine)
    return k_c, pi_k.to_bytes()


class ProverPool:
    """A warm, persistent pool of pi_k prover processes."""

    def __init__(self, ctx: SnarkContext, workers: int = 1) -> None:
        if workers <= 0:
            raise ServiceError("prover pool needs at least one worker")
        self.workers = workers
        # Warm everything the workers will inherit: the serial engine the
        # forked provers use and the pi_k circuit keys on a context bound
        # to that engine (key objects are engine-independent data, so the
        # parent's cache transfers directly).
        engine = Engine()
        worker_ctx = SnarkContext(ctx.srs, engine=engine)
        worker_ctx._cache.update(ctx._cache)
        key_negotiation_keys(worker_ctx)
        # Mirror any newly derived keys back so the caller's context also
        # benefits from the warm-up.
        ctx._cache.update(worker_ctx._cache)
        _WORKER_STATE["ctx"] = worker_ctx
        _WORKER_STATE["engine"] = engine
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods:
            raise ServiceError(
                "prover pool requires the fork start method (cache inheritance)"
            )
        self._pool = multiprocessing.get_context("fork").Pool(workers)
        self._closed = False

    async def prove_key_negotiation(
        self, asset: DataAsset, k_v: int, h_v: int
    ) -> tuple:
        """Prove pi_k for ``asset`` masked with ``k_v``; awaitable.

        Returns ``(k_c, proof_bytes)``.  Seller-side fairness check (the
        locked h_v must match the k_v received off-chain) runs in the
        worker and surfaces as :class:`ProtocolError`.
        """
        if self._closed:
            raise ServiceError("prover pool is closed")
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()

        def _done(result: tuple) -> None:
            loop.call_soon_threadsafe(_resolve, result, None)

        def _fail(exc: BaseException) -> None:
            loop.call_soon_threadsafe(_resolve, None, exc)

        def _resolve(result: Optional[tuple], exc: Optional[BaseException]) -> None:
            if fut.cancelled():
                return
            if exc is None:
                fut.set_result(result)
            else:
                fut.set_exception(exc)

        started = time.perf_counter()
        self._pool.apply_async(
            _prove_pik_job,
            (
                (
                    asset.key,
                    asset.key_commitment.value,
                    asset.key_blinder,
                    k_v,
                    h_v,
                ),
            ),
            callback=_done,
            error_callback=_fail,
        )
        try:
            result: tuple = await fut
        finally:
            if telemetry.metrics_enabled():
                telemetry.counter("service.pool.jobs").inc()
                telemetry.histogram(
                    "service.pool.prove.seconds", LATENCY_BUCKETS
                ).observe(time.perf_counter() - started)
        return result

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "ProverPool":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> Optional[bool]:
        self.close()
        return None
