"""Bounded multi-tenant request queue with round-robin fairness.

Admission control happens *synchronously at the door*: :meth:`FairQueue.put_nowait`
either accepts the request or raises :class:`~repro.errors.QueueFullError`
immediately, so a client learns it was shed before any protocol state
exists for it.  Two budgets apply — a global depth bound (protects the
node) and an optional per-tenant bound (protects tenants from each
other; one buyer flooding the queue cannot evict or starve the rest).

Dispatch is per-tenant round-robin: tenants with queued work form a
ring, and each :meth:`FairQueue.get` serves the ring's head tenant one
item, then moves it to the back.  A tenant with 100 queued requests and
a tenant with 1 therefore alternate until the small tenant drains,
rather than the large tenant monopolising a FIFO prefix.

The queue is asyncio-native and single-loop: producers are synchronous
(`put_nowait`), consumers ``await get()``.  No thread safety is provided
or needed — the node runs one event loop.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro import telemetry
from repro.errors import QueueFullError


class FairQueue:
    """Bounded per-tenant queue; round-robin between tenants on get."""

    def __init__(self, maxsize: int, per_tenant: Optional[int] = None) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        if per_tenant is not None and per_tenant <= 0:
            raise ValueError("per_tenant must be positive when set")
        self.maxsize = maxsize
        self.per_tenant = per_tenant
        self._items: Dict[str, Deque[Any]] = {}
        self._ring: Deque[str] = deque()
        self._size = 0
        self._getters: Deque[asyncio.Future] = deque()

    # ----- introspection --------------------------------------------------

    def qsize(self) -> int:
        return self._size

    def empty(self) -> bool:
        return self._size == 0

    def tenant_depth(self, tenant: str) -> int:
        items = self._items.get(tenant)
        return len(items) if items else 0

    # ----- producer side --------------------------------------------------

    def put_nowait(self, tenant: str, item: Any) -> None:
        """Admit one item or raise :class:`QueueFullError` immediately."""
        if self._size >= self.maxsize:
            self._reject(tenant, "queue")
        items = self._items.get(tenant)
        if items is None:
            items = self._items[tenant] = deque()
        if self.per_tenant is not None and len(items) >= self.per_tenant:
            self._reject(tenant, "tenant")
        if not items:
            self._ring.append(tenant)
        items.append(item)
        self._size += 1
        if telemetry.metrics_enabled():
            telemetry.counter("service.queue.admitted").inc()
        self._wake_one()

    def _reject(self, tenant: str, scope: str) -> None:
        if telemetry.metrics_enabled():
            telemetry.counter("service.queue.rejected", scope=scope).inc()
        if scope == "queue":
            raise QueueFullError(
                "queue full (%d items); request shed" % self._size
            )
        raise QueueFullError(
            "tenant %r exceeded its queue budget (%d items)"
            % (tenant, self.per_tenant)
        )

    def _wake_one(self) -> None:
        while self._getters:
            fut = self._getters.popleft()
            if not fut.done():
                fut.set_result(None)
                return

    # ----- consumer side --------------------------------------------------

    async def get(self) -> Tuple[str, Any]:
        """Wait for an item; returns ``(tenant, item)`` fairly."""
        while self._size == 0:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._getters.append(fut)
            try:
                await fut
            finally:
                if not fut.done():
                    fut.cancel()
                try:
                    self._getters.remove(fut)
                except ValueError:
                    pass
        tenant = self._ring.popleft()
        items = self._items[tenant]
        item = items.popleft()
        self._size -= 1
        if items:
            self._ring.append(tenant)
        else:
            del self._items[tenant]
        if self._size and self._getters:
            # More work remains: chain the wake so concurrent getters drain
            # the queue without waiting for the next put.
            self._wake_one()
        return tenant, item
