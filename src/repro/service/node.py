"""The asyncio marketplace node: sessions, admission, pipeline, settlement.

One :class:`MarketplaceNode` is a long-lived serving process for the
key-secure exchange (Section IV-F of the paper).  Where
:class:`repro.core.exchange.KeySecureExchange` drives one exchange as a
synchronous call — re-verifying pi_p, proving pi_k and settling one
transaction at a time — the node amortises everything amortisable:

- **sessions** pin a seller's listing: the phase-1 data-validation
  message ``(c_d, pi_p)`` is produced and verified once per session, not
  once per request (``verify_phase1="always"`` restores the paranoid
  per-request re-check for comparison runs);
- **admission control** is a bounded :class:`~repro.service.queue.FairQueue`
  with per-tenant budgets — overload is shed at the door with
  :class:`~repro.errors.QueueFullError`, and dispatch round-robins
  across tenants;
- **proving** goes to a persistent :class:`~repro.service.pool.ProverPool`
  whose forked workers inherit warm SRS/circuit-key/window-table caches,
  or to a seller-supplied :class:`NegotiationBundle` (sellers proving on
  their own hardware and attaching pi_k to the offer);
- **settlement** flows through a :class:`~repro.service.settlement.SettlementBatcher`:
  one ``submit_key_batch`` transaction settles k exchanges with a single
  batched pairing check.

Fault semantics mirror the synchronous driver exactly: the same
``exchange.msg.*`` / ``chain.*`` sites, the same per-step
:class:`~repro.faults.RetryPolicy`, and the same safety envelope — a
request that fails after payment lock always drives the buyer's refund
through under :data:`~repro.faults.retry.ABORT_POLICY` before reporting,
so no escrow is ever stranded.  The chaos suite asserts this under the
``exchange`` fault profile.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import faults, telemetry
from repro.chain import Blockchain
from repro.contracts import KeySecureArbiterContract, PlonkVerifierContract
from repro.core.exchange import Buyer, Seller, key_negotiation_keys
from repro.core.snark import SnarkContext
from repro.core.tokens import DataAsset
from repro.core.transform_protocol import (
    EncryptionProof,
    prove_encryption,
    verify_encryption,
)
from repro.errors import (
    DeadlineExceededError,
    ExchangeAbortedError,
    ProtocolError,
    QueueFullError,
    RetryExhaustedError,
    ServiceError,
    SessionError,
)
from repro.faults.retry import ABORT_POLICY, RetryPolicy
from repro.service.pool import ProverPool
from repro.service.queue import FairQueue
from repro.service.settlement import SettlementBatcher
from repro.telemetry.metrics import LATENCY_BUCKETS


@dataclass(frozen=True)
class NodeConfig:
    """Tuning knobs for one node; defaults favour tests over throughput."""

    #: Global request-queue bound (admission control).
    queue_depth: int = 256
    #: Per-tenant queue budget; ``None`` disables the tenant bound.
    per_tenant_depth: Optional[int] = 32
    #: Concurrent pipeline coroutines consuming the queue.
    concurrency: int = 8
    #: Settlement batch size (members per ``submit_key_batch``).
    batch_size: int = 8
    #: Seconds a partial settlement batch may age before flushing.
    batch_delay: float = 0.02
    #: Wall-clock budget for the buyer's off-chain reply (None = wait
    #: forever).  Expires *before* payment lock, so a timed-out request
    #: is rejected with nothing escrowed.
    request_timeout: Optional[float] = 2.0
    #: Phase-1 policy: "session" verifies (c_d, pi_p) once per session,
    #: "always" re-verifies per request, "skip" trusts the session
    #: opener (test/bench setups that pre-verified out of band).
    verify_phase1: str = "session"
    #: Prover-pool workers for requests without an attached bundle;
    #: 0 proves inline on the event loop (blocks other requests).
    pool_workers: int = 0


@dataclass
class Session:
    """One seller listing held open by the node."""

    session_id: int
    tenant: str
    seller: Seller
    asset: DataAsset
    encryption_proof: Optional[EncryptionProof]
    data_commitment: int
    phase1_verified: bool = False
    exchanges: int = 0


@dataclass(frozen=True)
class NegotiationBundle:
    """A seller-precomputed phase-2 message: pi_k proven off-node.

    Sellers with their own proving hardware attach ``(k_c, pi_k)`` for a
    buyer-chosen verification key to the offer; the node then only
    verifies and settles.  ``verification_key``/``verification_hash``
    are the buyer's (k_v, h_v) pair the proof binds to.
    """

    verification_key: int
    verification_hash: int
    masked_key: int
    proof_bytes: bytes


@dataclass
class ExchangeRequest:
    """One buyer's request to purchase a session's listing."""

    session_id: int
    tenant: str
    price: int
    #: Buyer account; ``None`` lets the node create a funded account.
    buyer_address: Optional[str] = None
    #: Optional pre-proven phase-2 message (see :class:`NegotiationBundle`).
    bundle: Optional[NegotiationBundle] = None
    #: Simulated off-chain reply latency of this buyer, in seconds —
    #: raced against ``NodeConfig.request_timeout``.
    buyer_delay: float = 0.0


@dataclass
class RequestOutcome:
    """Terminal state of one request; exactly one of the flags is set
    for runs that touched the chain (``success`` xor ``aborted``), and
    both stay False for requests shed or rejected before any funds
    moved."""

    success: bool
    reason: str
    gas_used: int = 0
    exchange_id: Optional[int] = None
    aborted: bool = False
    plaintext: Optional[list] = None
    latency_s: float = 0.0


class MarketplaceNode:
    """A long-lived multi-tenant exchange-serving node."""

    def __init__(
        self,
        ctx: SnarkContext,
        config: Optional[NodeConfig] = None,
        retry: Optional[RetryPolicy] = None,
        initial_funds: int = 10**12,
    ) -> None:
        self.ctx = ctx
        self.config = config or NodeConfig()
        self.retry = retry if retry is not None else RetryPolicy()
        self.chain = Blockchain()
        self.operator = self.chain.create_account(funded=initial_funds)
        pik_keys = key_negotiation_keys(ctx)
        self.verifier = PlonkVerifierContract(pik_keys.vk)
        self.chain.deploy(self.verifier, self.operator)
        self.arbiter = KeySecureArbiterContract(self.verifier)
        self.chain.deploy(self.arbiter, self.operator)
        self.queue = FairQueue(
            self.config.queue_depth, per_tenant=self.config.per_tenant_depth
        )
        self.batcher = SettlementBatcher(
            self.chain,
            self.arbiter,
            relay_address=self.operator,
            batch_size=self.config.batch_size,
            max_delay=self.config.batch_delay,
            retry=self.retry,
        )
        self.pool: Optional[ProverPool] = None
        if self.config.pool_workers > 0:
            self.pool = ProverPool(ctx, workers=self.config.pool_workers)
        self._sessions: Dict[int, Session] = {}
        self._next_session = 1
        self._workers: List[asyncio.Task] = []
        self._running = False
        self._initial_funds = initial_funds

    # ----- accounts and sessions -----------------------------------------

    def register_account(self, funded: Optional[int] = None) -> str:
        return self.chain.create_account(
            funded=self._initial_funds if funded is None else funded
        )

    def open_session(
        self,
        asset: DataAsset,
        tenant: str = "seller",
        encryption_proof: Optional[EncryptionProof] = None,
        seller_address: Optional[str] = None,
    ) -> Session:
        """Admit a seller listing; phase-1 material is fixed per session.

        With ``verify_phase1 != "skip"`` the session's ``(c_d, pi_p)``
        is produced (unless supplied) and verified here, once — the
        amortisation the per-request driver lacks.  A session whose
        pi_p fails verification is refused outright.
        """
        if asset.uri is None:
            # Tests and benches sell unpublished assets; the node stands
            # in for the storage layer with a synthetic URI.
            asset.uri = "service://session/%d" % self._next_session
        address = seller_address or self.register_account()
        seller = Seller(self.ctx, asset, address)
        pi_p = encryption_proof
        verified = False
        if self.config.verify_phase1 != "skip":
            if pi_p is None:
                with telemetry.span("service.session.prove", proof="pi_p"):
                    pi_p = prove_encryption(self.ctx, asset)
            with telemetry.span("service.session.verify", proof="pi_p") as sp:
                verified = verify_encryption(self.ctx, asset.public_view(), pi_p)
                sp.set_attr("ok", verified)
            if not verified:
                raise ServiceError("session refused: pi_p failed verification")
        session = Session(
            session_id=self._next_session,
            tenant=tenant,
            seller=seller,
            asset=asset,
            encryption_proof=pi_p,
            data_commitment=asset.data_commitment.value,
            phase1_verified=verified,
        )
        self._sessions[session.session_id] = session
        self._next_session += 1
        if telemetry.metrics_enabled():
            telemetry.counter("service.sessions.opened").inc()
        return session

    def close_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)

    # ----- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._workers = [
            asyncio.create_task(self._worker_loop(), name="service-worker-%d" % i)
            for i in range(self.config.concurrency)
        ]

    async def stop(self) -> None:
        self._running = False
        await self.batcher.drain()
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self.pool is not None:
            # Pool.close() joins the forked workers — a blocking call
            # that would stall every other session on the loop (zklint
            # ASYNC-001); park it on the default executor instead.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.pool.close)

    # ----- request intake -------------------------------------------------

    def submit(self, request: ExchangeRequest) -> asyncio.Future:
        """Admit one request; returns a future for its outcome.

        Raises :class:`QueueFullError` synchronously when admission
        control sheds the request (global or per-tenant budget).
        """
        if not self._running:
            raise ServiceError("node is not running; call start() first")
        if request.session_id not in self._sessions:
            raise SessionError("unknown session %r" % request.session_id)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self.queue.put_nowait(request.tenant, (request, fut, time.perf_counter()))
        return fut

    async def serve(self, requests: List[ExchangeRequest]) -> List[RequestOutcome]:
        """Submit a batch of requests and await every outcome.

        Shed requests surface as ``RequestOutcome`` entries with reason
        ``"admission rejected: ..."`` rather than exceptions, so the
        result list is positionally aligned with ``requests``.
        """
        slots: List = []
        for request in requests:
            try:
                slots.append(self.submit(request))
            except (QueueFullError, SessionError) as exc:
                slots.append(
                    RequestOutcome(False, "admission rejected: %s" % exc)
                )
        results: List[RequestOutcome] = []
        for slot in slots:
            results.append(await slot if isinstance(slot, asyncio.Future) else slot)
        return results

    # ----- pipeline -------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            _tenant, (request, fut, enqueued) = await self.queue.get()
            try:
                outcome = await self._handle(request)
            except ExchangeAbortedError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                outcome = RequestOutcome(False, "internal error: %s" % exc)
            outcome.latency_s = time.perf_counter() - enqueued
            if telemetry.metrics_enabled():
                label = (
                    "success"
                    if outcome.success
                    else ("aborted" if outcome.aborted else "rejected")
                )
                telemetry.counter("service.requests", outcome=label).inc()
                telemetry.histogram(
                    "service.request.latency.seconds", LATENCY_BUCKETS
                ).observe(outcome.latency_s)
            if not fut.done():
                fut.set_result(outcome)

    async def _handle(self, request: ExchangeRequest) -> RequestOutcome:
        session = self._sessions.get(request.session_id)
        if session is None:
            return RequestOutcome(False, "session closed")
        gas = 0
        policy = self.retry
        buyer_address = request.buyer_address or self.register_account(
            funded=2 * request.price
        )
        buyer = Buyer(self.ctx, session.asset.public_view(), buyer_address)

        # ----- Phase 1: data validation (amortised per session) ----------
        if self.config.verify_phase1 == "always" or (
            self.config.verify_phase1 == "session" and not session.phase1_verified
        ):
            if session.encryption_proof is None:
                return RequestOutcome(False, "session has no pi_p to verify")
            ok = buyer.verify_data(session.data_commitment, session.encryption_proof)
            if not ok:
                return RequestOutcome(False, "pi_p rejected by buyer")
            session.phase1_verified = True

        # ----- The buyer's off-chain reply (k_v, h_v), with timeout ------
        try:
            reply = await self._await_buyer(request, buyer)
        except asyncio.TimeoutError:
            if telemetry.metrics_enabled():
                telemetry.counter("service.timeouts").inc()
            return RequestOutcome(
                False, "buyer reply timed out after %.3fs" % self.config.request_timeout
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted_outcome(gas, None, "k_v undeliverable: %s" % exc)
        k_v, h_v = reply

        # ----- Payment lock ----------------------------------------------
        try:
            receipt = policy.run(
                lambda: self.chain.transact(
                    buyer_address,
                    self.arbiter,
                    "lock_payment",
                    session.seller.address,
                    session.asset.key_commitment.value,
                    h_v,
                    value=request.price,
                ),
                site="chain.lock_payment",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return self._aborted_outcome(
                gas, None, "payment lock undeliverable: %s" % exc
            )
        gas += receipt.gas_used
        if not receipt.status:
            return RequestOutcome(False, "payment lock failed", gas)
        exchange_id = receipt.return_value

        # ----- Phase 2: pi_k ---------------------------------------------
        try:
            if request.bundle is not None:
                k_c, proof_bytes = (
                    request.bundle.masked_key,
                    request.bundle.proof_bytes,
                )
            elif self.pool is not None:
                k_c, proof_bytes = await self.pool.prove_key_negotiation(
                    session.asset, k_v, h_v
                )
            else:
                k_c, pi_k = session.seller.key_negotiation_message(k_v, h_v)
                proof_bytes = pi_k.to_bytes()
        except ProtocolError as exc:
            return await self._abort_and_refund(
                buyer_address, exchange_id, gas, str(exc)
            )
        try:
            policy.run(
                lambda: faults.check("exchange.msg.negotiation"),
                site="exchange.msg.negotiation",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return await self._abort_and_refund(
                buyer_address,
                exchange_id,
                gas,
                "phase-2 message undeliverable: %s" % exc,
            )

        # ----- Batched settlement ----------------------------------------
        try:
            settled, gas_share = await self.batcher.settle(
                exchange_id, k_c, proof_bytes
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            return await self._abort_and_refund(
                buyer_address,
                exchange_id,
                gas,
                "settlement undeliverable: %s" % exc,
            )
        gas += gas_share
        if not settled:
            return await self._abort_and_refund(
                buyer_address, exchange_id, gas, "pi_k rejected on chain"
            )

        masked = self.chain.call_view(self.arbiter, "masked_key", exchange_id)
        plaintext = buyer.recover_plaintext(masked)
        session.exchanges += 1
        return RequestOutcome(
            True, "ok", gas, exchange_id, plaintext=plaintext
        )

    async def _await_buyer(
        self, request: ExchangeRequest, buyer: Buyer
    ) -> tuple[int, int]:
        """The buyer's off-chain (k_v, h_v) delivery, under the node's
        wall-clock timeout and the ``exchange.msg.key`` fault site."""

        async def _reply() -> tuple[int, int]:
            if request.buyer_delay > 0:
                await asyncio.sleep(request.buyer_delay)
            self.retry.run(
                lambda: faults.check("exchange.msg.key"), site="exchange.msg.key"
            )
            if request.bundle is not None:
                buyer.k_v = request.bundle.verification_key
                return (
                    request.bundle.verification_key,
                    request.bundle.verification_hash,
                )
            return buyer.choose_verification_key()

        if self.config.request_timeout is None:
            return await _reply()
        return await asyncio.wait_for(_reply(), timeout=self.config.request_timeout)

    # ----- abort machinery ------------------------------------------------

    def _aborted_outcome(
        self, gas: int, exchange_id: Optional[int], reason: str
    ) -> RequestOutcome:
        if telemetry.metrics_enabled():
            telemetry.counter("exchange.aborted", protocol="keysecure").inc()
        return RequestOutcome(False, reason, gas, exchange_id, aborted=True)

    async def _abort_and_refund(
        self, buyer_address: str, exchange_id: int, gas: int, reason: str
    ) -> RequestOutcome:
        """Drive the buyer's refund through persistently (the
        safety-critical leg — see the synchronous driver's docstring);
        identical policy and failure semantics to
        :meth:`KeySecureExchange._abort_and_refund`."""
        try:
            refund = ABORT_POLICY.run(
                lambda: self.chain.transact(
                    buyer_address, self.arbiter, "refund", exchange_id
                ),
                site="chain.refund",
            )
        except (RetryExhaustedError, DeadlineExceededError) as exc:
            raise ExchangeAbortedError(
                "buyer refund for exchange %s could not be submitted: %s"
                % (exchange_id, exc)
            ) from exc
        gas += refund.gas_used
        if not refund.status:
            raise ExchangeAbortedError(
                "buyer refund for exchange %s reverted: %s"
                % (exchange_id, refund.error)
            )
        return self._aborted_outcome(gas, exchange_id, reason)
