"""Batched settlement: accumulate completed exchanges, settle k at a time.

Completed exchanges do not hit the chain one transaction each.  The
batcher parks each ``(exchange_id, k_c, proof_bytes)`` triple behind an
awaitable future and flushes when either ``batch_size`` members are
waiting or ``max_delay`` seconds pass since the first member arrived —
the standard size-or-age policy, so a lone exchange in a quiet period is
never parked indefinitely.

A flush is **one** transaction from the node's relay account to
:meth:`KeySecureArbiterContract.submit_key_batch`, which verifies every
member through the verifier contract's random-linear-combination fold:
one pairing check for the whole batch, per-member gas amortised to
``receipt.gas_used // k``.  The arbiter settles each valid member to its
*stored* seller, so relaying is trustless (see the contract docstring).

Failure isolation: a member whose proof fails verification resolves as
``settled=False`` — its exchange stays open for the caller to abort and
refund — while its batchmates settle normally.  Only a transport-level
failure of the batch transaction itself (injected drops exhausting the
retry policy) rejects every member's future, and the node then drives
each member's refund individually.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro import telemetry
from repro.chain import Blockchain
from repro.contracts import KeySecureArbiterContract
from repro.faults.retry import RetryPolicy


class SettlementBatcher:
    """Size-or-age batching of ``submit_key_batch`` settlements."""

    def __init__(
        self,
        chain: Blockchain,
        arbiter: KeySecureArbiterContract,
        relay_address: str,
        batch_size: int = 8,
        max_delay: float = 0.02,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.chain = chain
        self.arbiter = arbiter
        self.relay_address = relay_address
        self.batch_size = batch_size
        self.max_delay = max_delay
        self.retry = retry if retry is not None else RetryPolicy()
        #: Waiting members: (exchange_id, k_c, proof_bytes, future).
        self._pending: List[tuple] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        #: Gas spent across all flushed batch transactions.
        self.gas_total = 0
        self.batches_flushed = 0

    async def settle(
        self, exchange_id: int, k_c: int, proof_bytes: bytes
    ) -> Tuple[bool, int]:
        """Queue one exchange for batched settlement; await its outcome.

        Resolves to ``(settled, gas_share)``.  Raises whatever the batch
        transaction raised (retry exhaustion) when the flush itself could
        not be delivered.
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._pending.append((exchange_id, k_c, proof_bytes, fut))
        if len(self._pending) >= self.batch_size:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush)
        return await fut

    async def drain(self) -> None:
        """Flush any waiting members immediately (shutdown path)."""
        if self._pending:
            self._flush()
        # Yield once so just-resolved futures' awaiters run.
        await asyncio.sleep(0)

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        entries = tuple((eid, k_c, pb) for eid, k_c, pb, _ in batch)
        try:
            receipt = self.retry.run(
                lambda: self.chain.transact(
                    self.relay_address,
                    self.arbiter,
                    "submit_key_batch",
                    entries,
                ),
                site="chain.submit_key",
            )
        except Exception as exc:
            for _eid, _kc, _pb, fut in batch:
                if not fut.done():
                    fut.set_exception(exc)
            return
        self.batches_flushed += 1
        self.gas_total += receipt.gas_used
        gas_share = receipt.gas_used // len(batch)
        settled = set(receipt.return_value) if receipt.status else set()
        if telemetry.metrics_enabled():
            telemetry.histogram("service.settlement.batch_size").observe(len(batch))
            telemetry.counter("service.settlement.settled").inc(len(settled))
            telemetry.counter(
                "service.settlement.unsettled"
            ).inc(len(batch) - len(settled))
        for eid, _kc, _pb, fut in batch:
            if not fut.done():
                fut.set_result((eid in settled, gas_share))
