"""The marketplace service plane: a long-lived asyncio exchange node.

Everything below :mod:`repro.core` runs one exchange as a synchronous
in-process call.  This package adds the serving layer the paper's
throughput claims presuppose:

- :class:`~repro.service.queue.FairQueue` — bounded admission with
  per-tenant budgets and round-robin dispatch (backpressure at the door,
  not in the middle of a protocol run);
- :class:`~repro.service.pool.ProverPool` — a persistent fork-based
  worker pool whose processes inherit the parent's warmed SRS and
  circuit-key caches, so CPU-bound pi_k proving never re-derives them;
- :class:`~repro.service.settlement.SettlementBatcher` — accumulates
  completed exchanges and settles them k-at-a-time through the arbiter's
  ``submit_key_batch`` (one batched pairing check, amortised gas);
- :class:`~repro.service.node.MarketplaceNode` — sessions, accounts and
  the request pipeline tying the three together.

See ``docs/service.md`` for the architecture discussion.
"""

from repro.service.node import (
    ExchangeRequest,
    MarketplaceNode,
    NegotiationBundle,
    NodeConfig,
    RequestOutcome,
    Session,
)
from repro.service.pool import ProverPool
from repro.service.queue import FairQueue
from repro.service.settlement import SettlementBatcher

__all__ = [
    "ExchangeRequest",
    "FairQueue",
    "MarketplaceNode",
    "NegotiationBundle",
    "NodeConfig",
    "ProverPool",
    "RequestOutcome",
    "Session",
    "SettlementBatcher",
]
