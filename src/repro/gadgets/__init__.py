"""In-circuit gadget library (the paper's Challenge 1).

"It is impossible to enumerate all potential operations for practical
scenarios.  Nevertheless, we implement a library of fundamental
cryptographic and mathematical gadgets to construct predicates for
complicated relations."  (Section III-D)

Every gadget takes a :class:`~repro.plonk.circuit.CircuitBuilder` and wire
handles, emits constraints, and returns result wires.  Each cryptographic
gadget mirrors a native primitive in ``repro.primitives``; the test suite
enforces bit-for-bit equivalence between the two.
"""

from repro.gadgets import (
    arithmetic,
    babyjubjub,
    boolean,
    comparison,
    fixedpoint,
    linalg,
    merkle,
    mimc,
    poseidon,
)

__all__ = [
    "arithmetic",
    "babyjubjub",
    "boolean",
    "comparison",
    "fixedpoint",
    "linalg",
    "merkle",
    "mimc",
    "poseidon",
]
