"""In-circuit MiMC-p/p and CTR encryption (the heart of pi_e).

The proof-of-encryption statements of Section IV-B —
``ct_i = pt_i + E_k(nonce + i)`` — are proved by re-computing the cipher
inside the circuit.  One MiMC block costs 91 rounds x 4 multiplication
gates (x^7 via x2, x4, x6, x7) plus one linear gate per round, which is
why the paper picks MiMC over AES ("millions of constraints" per kilobyte,
Section IV-C).
"""

from __future__ import annotations

from repro.plonk.circuit import CircuitBuilder, Wire
from repro.primitives.mimc import EXPONENT, MiMC, ROUNDS


def mimc_block(
    builder: CircuitBuilder,
    key: Wire,
    block: Wire,
    rounds: int = ROUNDS,
) -> Wire:
    """Constrain and return E_key(block)."""
    cipher = MiMC(rounds=rounds)
    x = block
    for c in cipher.constants:
        s = builder.linear_combination([(1, x), (1, key)], constant=c)
        # s^7 = ((s^2)^2 * s^2) * s  -- 4 multiplication gates.
        s2 = builder.mul(s, s)
        s4 = builder.mul(s2, s2)
        s6 = builder.mul(s4, s2)
        x = builder.mul(s6, s)
    assert EXPONENT == 7, "gadget unrolled for exponent 7"
    return builder.add(x, key)


def mimc_ctr_encrypt(
    builder: CircuitBuilder,
    key: Wire,
    plaintext: list[Wire],
    nonce: Wire,
    rounds: int = ROUNDS,
) -> list[Wire]:
    """Constrain and return the CTR ciphertext wires for ``plaintext``."""
    out = []
    for i, pt in enumerate(plaintext):
        counter = builder.add_const(nonce, i)
        keystream = mimc_block(builder, key, counter, rounds=rounds)
        out.append(builder.add(pt, keystream))
    return out


def assert_ctr_encryption(
    builder: CircuitBuilder,
    key: Wire,
    plaintext: list[Wire],
    nonce: Wire,
    ciphertext: list[Wire],
    rounds: int = ROUNDS,
) -> None:
    """Constrain ciphertext_i == plaintext_i + E_key(nonce + i) for all i."""
    computed = mimc_ctr_encrypt(builder, key, plaintext, nonce, rounds=rounds)
    if len(computed) != len(ciphertext):
        raise ValueError("ciphertext length mismatch")
    for got, expected in zip(computed, ciphertext):
        builder.assert_equal(got, expected)


def constraints_per_block(rounds: int = ROUNDS) -> int:
    """Gate count of one MiMC block (used by the cost model)."""
    return rounds * 5 + 1
