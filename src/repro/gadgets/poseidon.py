"""In-circuit Poseidon permutation, sponge hash and commitment opening.

Used for the Open(m, c, o) = 1 clauses of the transformation and exchange
protocols: the circuit recomputes the Poseidon commitment from the witness
message and blinder and constrains it to equal the public commitment.
"""

from __future__ import annotations

from repro.gadgets.arithmetic import pow_const
from repro.plonk.circuit import CircuitBuilder, Wire
from repro.primitives.poseidon import ALPHA, Poseidon


def poseidon_permutation(
    builder: CircuitBuilder, state: list[Wire], width: int = 3
) -> list[Wire]:
    """Constrain and return the Poseidon permutation of ``state``."""
    spec = Poseidon.get(width)
    if len(state) != width:
        raise ValueError("state width mismatch")
    half_full = spec.full_rounds // 2
    total = spec.full_rounds + spec.partial_rounds
    rc = spec.round_constants
    for rnd in range(total):
        offset = rnd * width
        state = [
            builder.add_const(s, rc[offset + i]) for i, s in enumerate(state)
        ]
        if rnd < half_full or rnd >= total - half_full:
            state = [pow_const(builder, s, ALPHA) for s in state]
        else:
            state = [pow_const(builder, state[0], ALPHA)] + state[1:]
        mixed = []
        for i in range(width):
            mixed.append(
                builder.linear_combination(
                    [(spec.mds[i][j], state[j]) for j in range(width)]
                )
            )
        state = mixed
    return state


def poseidon_hash_gadget(
    builder: CircuitBuilder, inputs: list[Wire], width: int = 3
) -> Wire:
    """Constrain and return the sponge hash of ``inputs`` (matches
    :func:`repro.primitives.poseidon.poseidon_hash`)."""
    rate = width - 1
    state = [builder.constant(len(inputs))] + [builder.constant(0)] * rate
    count = max(len(inputs), 1)
    for i in range(0, count, rate):
        chunk = inputs[i : i + rate]
        absorbed = list(state)
        for j, wire in enumerate(chunk):
            absorbed[1 + j] = builder.add(state[1 + j], wire)
        state = poseidon_permutation(builder, absorbed, width)
    return state[0]


def assert_commitment_opens(
    builder: CircuitBuilder,
    message: list[Wire],
    commitment: Wire,
    blinder: Wire,
    width: int = 3,
) -> None:
    """Constrain Open(message, commitment, blinder) == 1.

    Recomputes c' = Poseidon(blinder || message) in-circuit and enforces
    c' == commitment (the public input wire).
    """
    computed = poseidon_hash_gadget(builder, [blinder] + list(message), width)
    builder.assert_equal(computed, commitment)
