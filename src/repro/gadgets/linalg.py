"""Vector / matrix gadgets over fixed-point values.

The "mathematical primitives: algebraic and matrix operation" entries of
the paper's gadget library (Section IV-D), used by the model-training
applications: dot products, matrix-vector products, ReLU layers and an
exp-normalised softmax approximation.
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.field.fr import MODULUS as R
from repro.gadgets.fixedpoint import (
    FixedPointSpec,
    exp_coefficients,
    fp_mul,
    fp_poly,
    fp_relu,
)
from repro.plonk.circuit import CircuitBuilder, Wire


def fp_dot(
    builder: CircuitBuilder, xs: list[Wire], ys: list[Wire], spec: FixedPointSpec
) -> Wire:
    """Fixed-point inner product: sum of truncated pairwise products."""
    if len(xs) != len(ys):
        raise CircuitError("dot product of unequal-length vectors")
    if not xs:
        return builder.constant(0)
    terms = [fp_mul(builder, x, y, spec) for x, y in zip(xs, ys)]
    return builder.linear_combination([(1, t) for t in terms])


def fp_matvec(
    builder: CircuitBuilder,
    matrix: list[list[Wire]],
    vector: list[Wire],
    spec: FixedPointSpec,
) -> list[Wire]:
    """Fixed-point matrix-vector product (row-major matrix of wires)."""
    return [fp_dot(builder, row, vector, spec) for row in matrix]


def fp_vec_add(builder: CircuitBuilder, xs: list[Wire], ys: list[Wire]) -> list[Wire]:
    """Elementwise vector addition (exact in the field)."""
    if len(xs) != len(ys):
        raise CircuitError("vector addition of unequal lengths")
    return [builder.add(x, y) for x, y in zip(xs, ys)]


def fp_relu_vec(
    builder: CircuitBuilder, xs: list[Wire], spec: FixedPointSpec
) -> list[Wire]:
    """Elementwise ReLU."""
    return [fp_relu(builder, x, spec) for x in xs]


def fp_softmax(
    builder: CircuitBuilder, xs: list[Wire], spec: FixedPointSpec
) -> list[Wire]:
    """Softmax via the polynomial exp approximation plus a witnessed
    normaliser.

    Each e_i = exp_poly(x_i); the inverse of their sum is supplied as a
    witness and verified with one multiplication constraint (s * inv = 1),
    sidestepping in-circuit division — the standard zk-ML trick.
    """
    coeffs = exp_coefficients(spec)
    exps = [fp_poly(builder, coeffs, x, spec) for x in xs]
    total = builder.linear_combination([(1, e) for e in exps])
    total_val = builder.value(total)
    # inv is the *fixed point* reciprocal: inv ~ 2^(2F) / total.
    signed = total_val - R if total_val > R // 2 else total_val
    if signed <= 0:
        raise CircuitError("softmax normaliser must be positive")
    inv_scaled = (spec.scale * spec.scale) // signed
    inv = builder.var(inv_scaled % R)
    # Verify total * inv ~ 1 in fixed point, within one truncation ulp.
    check = fp_mul(builder, total, inv, spec)
    one = spec.encode(1.0)
    # |check - 1| <= 2 ulp: enforced by decomposing the small difference.
    diff = builder.add_const(check, -one + 2)
    from repro.gadgets.boolean import num_to_bits

    num_to_bits(builder, diff, 3)  # diff in [0, 8) covers the +-2 ulp window
    return [fp_mul(builder, e, inv, spec) for e in exps]


def matvec_native(
    matrix: list[list[int]], vector: list[int], spec: FixedPointSpec
) -> list[int]:
    """Native mirror of :func:`fp_matvec` (same truncation per product)."""
    out = []
    for row in matrix:
        acc = 0
        for m, v in zip(row, vector):
            acc = (acc + spec.mul_native(m, v)) % R
        out.append(acc)
    return out
