"""Boolean gadgets: bit decomposition, logic gates, equality, selection."""

from __future__ import annotations

from repro.errors import CircuitError
from repro.field.fr import MODULUS as R
from repro.plonk.circuit import CircuitBuilder, Wire


def num_to_bits(builder: CircuitBuilder, x: Wire, nbits: int) -> list[Wire]:
    """Decompose ``x`` into ``nbits`` boolean wires (little-endian).

    Also acts as a range check: the recomposition constraint forces
    ``x < 2**nbits`` (for nbits < 254, where no wraparound is possible).
    """
    if nbits >= 254:
        raise CircuitError("bit decomposition limited to fewer than 254 bits")
    value = builder.value(x)
    if value >> nbits:
        raise CircuitError("witness value does not fit in %d bits" % nbits)
    bits = []
    for i in range(nbits):
        bit = builder.var((value >> i) & 1)
        builder.assert_bool(bit)
        bits.append(bit)
    recomposed = builder.linear_combination([(1 << i, b) for i, b in enumerate(bits)])
    builder.assert_equal(recomposed, x)
    return bits


def bits_to_num(builder: CircuitBuilder, bits: list[Wire]) -> Wire:
    """Recompose boolean wires into a number (bits assumed constrained)."""
    return builder.linear_combination([(1 << i, b) for i, b in enumerate(bits)])


def and_gate(builder: CircuitBuilder, a: Wire, b: Wire) -> Wire:
    """Logical AND of boolean wires."""
    return builder.mul(a, b)


def or_gate(builder: CircuitBuilder, a: Wire, b: Wire) -> Wire:
    """Logical OR: a + b - a*b."""
    ab = builder.mul(a, b)
    return builder.linear_combination([(1, a), (1, b), (-1, ab)])


def not_gate(builder: CircuitBuilder, a: Wire) -> Wire:
    """Logical NOT: 1 - a."""
    return builder.linear_combination([(-1, a)], constant=1)


def xor_gate(builder: CircuitBuilder, a: Wire, b: Wire) -> Wire:
    """Logical XOR: a + b - 2ab."""
    ab = builder.mul(a, b)
    return builder.linear_combination([(1, a), (1, b), (-2, ab)])


def is_zero(builder: CircuitBuilder, x: Wire) -> Wire:
    """Return a boolean wire equal to 1 iff x == 0.

    The classic construction: witness inv = x^-1 (or 0), constrain
    out = 1 - x*inv and x*out = 0.
    """
    value = builder.value(x)
    inv_val = pow(value, R - 2, R) if value else 0
    inv = builder.var(inv_val)
    prod = builder.mul(x, inv)
    out = builder.linear_combination([(-1, prod)], constant=1)
    zero = builder.mul(x, out)
    builder.assert_zero(zero)
    return out


def is_equal(builder: CircuitBuilder, a: Wire, b: Wire) -> Wire:
    """Return a boolean wire equal to 1 iff a == b."""
    return is_zero(builder, builder.sub(a, b))


def select(builder: CircuitBuilder, cond: Wire, if_true: Wire, if_false: Wire) -> Wire:
    """Return cond ? if_true : if_false (cond must be boolean)."""
    diff = builder.sub(if_true, if_false)
    scaled = builder.mul(cond, diff)
    return builder.add(if_false, scaled)


def assert_all_distinct(builder: CircuitBuilder, wires: list[Wire]) -> None:
    """Constrain all wires to hold pairwise-distinct values.

    O(n^2) gates; used by the partition predicate's disjointness check on
    small index sets.
    """
    for i in range(len(wires)):
        for j in range(i + 1, len(wires)):
            builder.assert_not_zero(builder.sub(wires[i], wires[j]))
