"""Signed fixed-point arithmetic, native and in-circuit, with matching
semantics.

The data-processing applications of Section IV-E (logistic regression,
transformers) need real arithmetic inside circuits.  We use two's-
complement-style fixed point over the field: the real number v is encoded
as round(v * 2^FRAC_BITS), negatives as field negatives.  Every non-linear
step (multiplication truncation, polynomial approximations of sigmoid /
log / exp) exists twice — a native integer version and a gadget — with
*identical* rounding, so the natively computed witness always satisfies
the circuit.  The tests enforce this equivalence exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError
from repro.field.fr import MODULUS as R
from repro.gadgets.boolean import num_to_bits, select
from repro.plonk.circuit import CircuitBuilder, Wire


@dataclass(frozen=True)
class FixedPointSpec:
    """Fixed-point format: ``frac_bits`` fraction bits, values bounded by
    2**int_bits in magnitude (after scaling)."""

    frac_bits: int = 16
    int_bits: int = 20

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    @property
    def magnitude_bits(self) -> int:
        """Total bits of a scaled value's magnitude."""
        return self.int_bits + self.frac_bits

    # ----- native encode/decode -------------------------------------------------

    def encode(self, value: float) -> int:
        """Real -> field representation."""
        scaled = round(value * self.scale)
        if abs(scaled) >= (1 << self.magnitude_bits):
            raise CircuitError("value %r overflows fixed-point range" % value)
        return scaled % R

    def decode(self, element: int) -> float:
        """Field representation -> real."""
        signed = self.to_signed(element)
        return signed / self.scale

    def to_signed(self, element: int) -> int:
        """Field representation -> signed scaled integer."""
        element %= R
        return element - R if element > R // 2 else element

    def from_signed(self, signed: int) -> int:
        if abs(signed) >= (1 << self.magnitude_bits):
            raise CircuitError("scaled value overflows fixed-point range")
        return signed % R

    # ----- native arithmetic (mirrors the gadgets bit-for-bit) -------------------

    def mul_native(self, a: int, b: int) -> int:
        """Fixed-point product with floor truncation (matches the gadget)."""
        prod = self.to_signed(a) * self.to_signed(b)
        return self.from_signed(prod >> self.frac_bits)

    def add_native(self, a: int, b: int) -> int:
        return (a + b) % R

    def poly_native(self, coeffs: list[int], x: int) -> int:
        """Horner evaluation with fixed-point truncation at each step."""
        acc = coeffs[-1]
        for c in reversed(coeffs[:-1]):
            acc = self.add_native(self.mul_native(acc, x), c)
        return acc


#: Default format used by the applications.
DEFAULT_SPEC = FixedPointSpec()


def fp_truncate(builder: CircuitBuilder, x: Wire, spec: FixedPointSpec) -> Wire:
    """Floor-divide a double-precision product by 2**frac_bits.

    Input: x holds a signed scaled-by-2^(2F) value with magnitude below
    2**(magnitude_bits + frac_bits).  The gadget offsets x into the
    non-negative range, splits off the low ``frac_bits`` bits with a full
    bit decomposition (which doubles as the range proof), and removes the
    offset again.  Matches ``signed >> frac_bits`` exactly (floor, i.e.
    rounding toward minus infinity).
    """
    total_bits = spec.magnitude_bits + spec.frac_bits
    offset = 1 << total_bits
    shifted = builder.add_const(x, offset)
    shifted_val = builder.value(shifted)
    if shifted_val >= (offset << 1):
        raise CircuitError("fixed-point product out of range")
    hi = builder.var(shifted_val >> spec.frac_bits)
    lo = builder.var(shifted_val & (spec.scale - 1))
    num_to_bits(builder, hi, total_bits - spec.frac_bits + 1)
    num_to_bits(builder, lo, spec.frac_bits)
    recomposed = builder.linear_combination([(spec.scale, hi), (1, lo)])
    builder.assert_equal(recomposed, shifted)
    return builder.add_const(hi, -(offset >> spec.frac_bits))


def fp_mul(builder: CircuitBuilder, a: Wire, b: Wire, spec: FixedPointSpec) -> Wire:
    """Fixed-point multiplication: truncated product."""
    raw = builder.mul(a, b)
    return fp_truncate(builder, raw, spec)


def fp_poly(
    builder: CircuitBuilder, coeffs: list[int], x: Wire, spec: FixedPointSpec
) -> Wire:
    """Evaluate a constant-coefficient polynomial at wire x (Horner),
    mirroring :meth:`FixedPointSpec.poly_native`."""
    acc = builder.constant(coeffs[-1])
    for c in reversed(coeffs[:-1]):
        acc = builder.add_const(fp_mul(builder, acc, x, spec), c)
    return acc


def fp_is_negative(builder: CircuitBuilder, x: Wire, spec: FixedPointSpec) -> Wire:
    """Boolean wire: 1 iff x encodes a negative value."""
    offset = 1 << spec.magnitude_bits
    shifted = builder.add_const(x, offset)
    bits = num_to_bits(builder, shifted, spec.magnitude_bits + 1)
    # Top bit set -> shifted >= 2^magnitude_bits -> x >= 0.
    from repro.gadgets.boolean import not_gate

    return not_gate(builder, bits[spec.magnitude_bits])


def fp_abs(builder: CircuitBuilder, x: Wire, spec: FixedPointSpec) -> Wire:
    """Absolute value."""
    neg = fp_is_negative(builder, x, spec)
    minus = builder.scale(x, -1)
    return select(builder, neg, minus, x)


def fp_relu(builder: CircuitBuilder, x: Wire, spec: FixedPointSpec) -> Wire:
    """max(0, x) — the transformer FFN activation."""
    neg = fp_is_negative(builder, x, spec)
    zero = builder.constant(0)
    return select(builder, neg, zero, x)


def fp_assert_le(
    builder: CircuitBuilder, x: Wire, bound: Wire, spec: FixedPointSpec
) -> None:
    """Constrain x <= bound, both interpreted as signed fixed point."""
    offset = 1 << spec.magnitude_bits
    sx = builder.add_const(x, offset)
    sb = builder.add_const(bound, offset)
    from repro.gadgets.comparison import less_than

    le = less_than(builder, sx, builder.add_const(sb, 1), spec.magnitude_bits + 1)
    builder.assert_constant(le, 1)


# ----- polynomial approximations shared by native + gadget paths ---------------


def sigmoid_coefficients(spec: FixedPointSpec) -> list[int]:
    """Degree-5 odd polynomial approximating sigmoid on roughly [-4, 4].

    sigma(z) ~ 1/2 + z/4 - z^3/48 + z^5/480 (the classic tanh-based
    expansion).  Listed lowest-degree-first as fixed-point constants.
    """
    return [
        spec.encode(0.5),
        spec.encode(0.25),
        spec.encode(0.0),
        spec.encode(-1.0 / 48.0),
        spec.encode(0.0),
        spec.encode(1.0 / 480.0),
    ]


def log_coefficients(spec: FixedPointSpec) -> list[int]:
    """Degree-5 Taylor expansion of ln(x) around x = 1/2.

    Accurate for arguments in roughly (0.1, 0.9) — the operating range of
    calibrated logistic-regression probabilities in the demo workloads.
    """
    import math

    # ln(1/2 + t) = ln(1/2) + 2t - 2t^2 + (8/3)t^3 - 4t^4 + (32/5)t^5, t = x - 1/2.
    # Expand in x directly via binomial recombination:
    coeffs_t = [math.log(0.5), 2.0, -2.0, 8.0 / 3.0, -4.0, 32.0 / 5.0]
    # Convert polynomial in t = (x - 0.5) into a polynomial in x.
    poly_x = [0.0] * len(coeffs_t)
    base = [1.0]  # (x - 0.5)^0
    for k, ck in enumerate(coeffs_t):
        for i, bi in enumerate(base):
            poly_x[i] += ck * bi
        # multiply base by (x - 0.5)
        new = [0.0] * (len(base) + 1)
        for i, bi in enumerate(base):
            new[i] += -0.5 * bi
            new[i + 1] += bi
        base = new
    return [spec.encode(c) for c in poly_x]


def exp_coefficients(spec: FixedPointSpec) -> list[int]:
    """Degree-5 Taylor expansion of exp(x) around 0 (for |x| <~ 2)."""
    import math

    return [spec.encode(1.0 / math.factorial(k)) for k in range(6)]
