"""Algebraic gadgets: powers, sums, products, polynomial evaluation."""

from __future__ import annotations

from repro.plonk.circuit import CircuitBuilder, Wire


def pow_const(builder: CircuitBuilder, x: Wire, exponent: int) -> Wire:
    """Return a wire constrained to x**exponent (square-and-multiply)."""
    if exponent == 0:
        return builder.constant(1)
    result: Wire | None = None
    base = x
    e = exponent
    while e:
        if e & 1:
            result = base if result is None else builder.mul(result, base)
        e >>= 1
        if e:
            base = builder.mul(base, base)
    assert result is not None
    return result


def sum_wires(builder: CircuitBuilder, wires: list[Wire]) -> Wire:
    """Return a wire constrained to the sum of ``wires``."""
    return builder.linear_combination([(1, w) for w in wires])


def product(builder: CircuitBuilder, wires: list[Wire]) -> Wire:
    """Return a wire constrained to the product of ``wires``."""
    if not wires:
        return builder.constant(1)
    acc = wires[0]
    for w in wires[1:]:
        acc = builder.mul(acc, w)
    return acc


def dot(builder: CircuitBuilder, xs: list[Wire], ys: list[Wire]) -> Wire:
    """Return a wire constrained to the inner product <xs, ys>."""
    if len(xs) != len(ys):
        raise ValueError("dot product of unequal-length vectors")
    if not xs:
        return builder.constant(0)
    terms = [builder.mul(x, y) for x, y in zip(xs, ys)]
    return sum_wires(builder, terms)


def horner(builder: CircuitBuilder, coeffs: list[Wire], x: Wire) -> Wire:
    """Evaluate a polynomial with wire coefficients at wire ``x``."""
    if not coeffs:
        return builder.constant(0)
    acc = coeffs[-1]
    for c in reversed(coeffs[:-1]):
        acc = builder.mul_add(acc, x, c)
    return acc


def average_scaled(builder: CircuitBuilder, wires: list[Wire], scale: int) -> Wire:
    """Return ``scale * sum(wires)`` (used for 1/n factors folded into a
    field constant by the caller)."""
    return builder.linear_combination([(scale, w) for w in wires])
