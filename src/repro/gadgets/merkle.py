"""Merkle trees over Poseidon, native and in-circuit.

Listed among the paper's cryptographic gadgets (Section IV-D: "Merkle
proof") and used to authenticate dataset rows against a root committed in
NFT metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.field.fr import MODULUS as R
from repro.gadgets.boolean import select
from repro.gadgets.poseidon import poseidon_permutation
from repro.plonk.circuit import CircuitBuilder, Wire
from repro.primitives.poseidon import Poseidon


def _hash2(left: int, right: int) -> int:
    """Fixed-arity 2-to-1 compression: one Poseidon permutation."""
    return Poseidon.get(3).permute([0, left % R, right % R])[0]


def _hash2_gadget(builder: CircuitBuilder, left: Wire, right: Wire) -> Wire:
    state = [builder.constant(0), left, right]
    return poseidon_permutation(builder, state, 3)[0]


@dataclass(frozen=True)
class MerkleProof:
    """An authentication path: sibling hashes plus direction bits."""

    leaf_index: int
    siblings: tuple
    # path_bits[i] == 1 means the current node is the RIGHT child at level i.
    path_bits: tuple


class MerkleTree:
    """A fixed-depth Poseidon Merkle tree (native side)."""

    def __init__(self, leaves: list[int], depth: int | None = None):
        if not leaves:
            raise ReproError("Merkle tree needs at least one leaf")
        if depth is None:
            depth = max(1, (len(leaves) - 1).bit_length())
        if len(leaves) > (1 << depth):
            raise ReproError("too many leaves for depth %d" % depth)
        self.depth = depth
        padded = [v % R for v in leaves] + [0] * ((1 << depth) - len(leaves))
        self.levels = [padded]
        current = padded
        for _ in range(depth):
            current = [
                _hash2(current[i], current[i + 1]) for i in range(0, len(current), 2)
            ]
            self.levels.append(current)

    @property
    def root(self) -> int:
        return self.levels[-1][0]

    def prove(self, index: int) -> MerkleProof:
        """Authentication path for the leaf at ``index``."""
        if not 0 <= index < len(self.levels[0]):
            raise ReproError("leaf index out of range")
        siblings = []
        bits = []
        idx = index
        for level in range(self.depth):
            sibling_idx = idx ^ 1
            siblings.append(self.levels[level][sibling_idx])
            bits.append(idx & 1)
            idx >>= 1
        return MerkleProof(index, tuple(siblings), tuple(bits))

    @staticmethod
    def verify(root: int, leaf: int, proof: MerkleProof) -> bool:
        """Native path verification."""
        node = leaf % R
        for sibling, bit in zip(proof.siblings, proof.path_bits):
            if bit:
                node = _hash2(sibling, node)
            else:
                node = _hash2(node, sibling)
        return node == root


def merkle_path_gadget(
    builder: CircuitBuilder,
    leaf: Wire,
    siblings: list[Wire],
    path_bits: list[Wire],
) -> Wire:
    """Constrain and return the root computed from ``leaf`` and its path.

    ``path_bits`` wires must be boolean-constrained by the caller (or be
    produced by :func:`repro.gadgets.boolean.num_to_bits`).
    """
    if len(siblings) != len(path_bits):
        raise ReproError("siblings and path bits must align")
    node = leaf
    for sibling, bit in zip(siblings, path_bits):
        left = select(builder, bit, sibling, node)
        right = select(builder, bit, node, sibling)
        node = _hash2_gadget(builder, left, right)
    return node


def assert_merkle_membership(
    builder: CircuitBuilder,
    root: Wire,
    leaf: Wire,
    proof: MerkleProof,
) -> None:
    """Constrain that ``leaf`` lies under ``root`` along ``proof``'s path."""
    siblings = [builder.var(s) for s in proof.siblings]
    bits = []
    for b in proof.path_bits:
        w = builder.var(b)
        builder.assert_bool(w)
        bits.append(w)
    computed = merkle_path_gadget(builder, leaf, siblings, bits)
    builder.assert_equal(computed, root)
