"""Comparison gadgets: range checks and ordered comparisons.

All comparisons view their operands as integers below ``2**nbits``; the
caller is responsible for range-constraining inputs (usually they come out
of :func:`repro.gadgets.boolean.num_to_bits` or fixed-point gadgets that
already enforce ranges).
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.gadgets.boolean import not_gate, num_to_bits
from repro.plonk.circuit import CircuitBuilder, Wire


def assert_in_range(builder: CircuitBuilder, x: Wire, nbits: int) -> None:
    """Constrain 0 <= x < 2**nbits."""
    num_to_bits(builder, x, nbits)


def less_than(builder: CircuitBuilder, a: Wire, b: Wire, nbits: int) -> Wire:
    """Return a boolean wire equal to 1 iff a < b (both < 2**nbits).

    Computes a + 2^nbits - b and inspects the top carry bit: the carry is
    1 exactly when a >= b.
    """
    if nbits >= 253:
        raise CircuitError("comparison width too large for the field")
    shifted = builder.linear_combination([(1, a), (-1, b)], constant=1 << nbits)
    bits = num_to_bits(builder, shifted, nbits + 1)
    return not_gate(builder, bits[nbits])


def less_or_equal(builder: CircuitBuilder, a: Wire, b: Wire, nbits: int) -> Wire:
    """Return 1 iff a <= b."""
    b_plus = builder.add_const(b, 1)
    return less_than(builder, a, b_plus, nbits)


def assert_less_than(builder: CircuitBuilder, a: Wire, b: Wire, nbits: int) -> None:
    """Constrain a < b."""
    builder.assert_constant(less_than(builder, a, b, nbits), 1)


def abs_diff(builder: CircuitBuilder, a: Wire, b: Wire, nbits: int) -> Wire:
    """Return |a - b| for a, b < 2**nbits."""
    lt = less_than(builder, a, b, nbits)
    from repro.gadgets.boolean import select

    big_minus_small = select(
        builder, lt, builder.sub(b, a), builder.sub(a, b)
    )
    assert_in_range(builder, big_minus_small, nbits)
    return big_minus_small
