"""In-circuit Baby Jubjub arithmetic and Schnorr verification.

Complete twisted-Edwards formulas make the gadgets branch-free: one point
addition costs 8 constraints (two witnessed inverses), and a full
scalar multiplication about 251 * 14.  A Schnorr verification —
s*B == R + H(R, pk, m)*pk with a Poseidon challenge — lets data owners
prove statements like "this listing is signed by the committed identity"
without revealing the key (the paper's identity/endorsement use case for
data provenance, Section I).
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.field.fr import MODULUS as R, inv
from repro.gadgets.boolean import num_to_bits, select
from repro.gadgets.poseidon import poseidon_hash_gadget
from repro.plonk.circuit import CircuitBuilder, Wire
from repro.primitives.babyjubjub import A, D, JubjubPoint, SUBGROUP_ORDER

#: Bits needed to cover the subgroup order.
SCALAR_BITS = SUBGROUP_ORDER.bit_length()  # 251

JubjubWires = tuple  # (x_wire, y_wire)


def assert_on_curve(builder: CircuitBuilder, point: JubjubWires) -> None:
    """Constrain a*x^2 + y^2 == 1 + d*x^2*y^2."""
    x, y = point
    x2 = builder.mul(x, x)
    y2 = builder.mul(y, y)
    lhs = builder.linear_combination([(A, x2), (1, y2)])
    x2y2 = builder.mul(x2, y2)
    rhs = builder.linear_combination([(D, x2y2)], constant=1)
    builder.assert_equal(lhs, rhs)


def _witness_division(builder: CircuitBuilder, numerator: Wire, denominator: Wire) -> Wire:
    """Return q with q * denominator == numerator (denominator != 0).

    Complete Edwards formulas guarantee non-zero denominators for curve
    points, so the non-zero assertion can never fail for honest inputs.
    """
    den_val = builder.value(denominator)
    if den_val == 0:
        raise CircuitError("Edwards denominator vanished (inputs off-curve?)")
    q = builder.var(builder.value(numerator) * inv(den_val) % R)
    builder.assert_mul(q, denominator, numerator)
    builder.assert_not_zero(denominator)
    return q


def point_add(builder: CircuitBuilder, p: JubjubWires, q: JubjubWires) -> JubjubWires:
    """Complete twisted Edwards addition."""
    x1, y1 = p
    x2, y2 = q
    x1y2 = builder.mul(x1, y2)
    y1x2 = builder.mul(y1, x2)
    y1y2 = builder.mul(y1, y2)
    x1x2 = builder.mul(x1, x2)
    # d * x1*x2*y1*y2, computed from (x1y2)(y1x2) which equals x1x2y1y2.
    dprod = builder.scale(builder.mul(x1y2, y1x2), D)
    x_num = builder.add(x1y2, y1x2)
    x_den = builder.add_const(dprod, 1)
    y_num = builder.sub(y1y2, builder.scale(x1x2, A))
    y_den = builder.linear_combination([(-1, dprod)], constant=1)
    x3 = _witness_division(builder, x_num, x_den)
    y3 = _witness_division(builder, y_num, y_den)
    return (x3, y3)


def point_double(builder: CircuitBuilder, p: JubjubWires) -> JubjubWires:
    """Doubling via the complete addition formula."""
    return point_add(builder, p, p)


def point_select(
    builder: CircuitBuilder, bit: Wire, if_one: JubjubWires, if_zero: JubjubWires
) -> JubjubWires:
    """Conditional point: bit ? if_one : if_zero (bit boolean)."""
    return (
        select(builder, bit, if_one[0], if_zero[0]),
        select(builder, bit, if_one[1], if_zero[1]),
    )


def scalar_mul(
    builder: CircuitBuilder, scalar: Wire, point: JubjubWires, bits: int = SCALAR_BITS
) -> JubjubWires:
    """Double-and-add scalar multiplication with a witnessed bit
    decomposition of ``scalar`` (range-checked to ``bits`` bits)."""
    scalar_bits = num_to_bits(builder, scalar, bits)
    identity = (builder.constant(0), builder.constant(1))
    result: JubjubWires = identity
    base = point
    for i, bit in enumerate(scalar_bits):
        added = point_add(builder, result, base)
        result = point_select(builder, bit, added, result)
        if i + 1 < bits:
            base = point_double(builder, base)
    return result


def fixed_base_mul(builder: CircuitBuilder, scalar: Wire, bits: int = SCALAR_BITS) -> JubjubWires:
    """Scalar multiplication by the subgroup generator.

    Precomputed doublings of the fixed base become circuit constants,
    saving one doubling chain versus :func:`scalar_mul`.
    """
    scalar_bits = num_to_bits(builder, scalar, bits)
    result: JubjubWires = (builder.constant(0), builder.constant(1))
    base = JubjubPoint.base()
    for bit in scalar_bits:
        base_wires = (builder.constant(base.x), builder.constant(base.y))
        added = point_add(builder, result, base_wires)
        result = point_select(builder, bit, added, result)
        base = base + base
    return result


def assert_schnorr_verifies(
    builder: CircuitBuilder,
    pk: JubjubWires,
    message: Wire,
    r_point: JubjubWires,
    s: Wire,
) -> None:
    """Constrain s*B == R + Poseidon(R, pk, m)*pk.

    The challenge hash is reduced modulo the subgroup order *natively* by
    the signer; in-circuit we recompute the unreduced Poseidon output and
    let the prover witness the reduction e = h - q*order with a range
    check — standard practice for scalar-field mismatches.
    """
    h = poseidon_hash_gadget(builder, [r_point[0], r_point[1], pk[0], pk[1], message])
    h_val = builder.value(h)
    quotient_val, e_val = divmod(h_val, SUBGROUP_ORDER)
    quotient = builder.var(quotient_val)
    e = builder.var(e_val)
    num_to_bits(builder, quotient, 6)  # h < r < 8 * order => q < 8
    num_to_bits(builder, e, SCALAR_BITS)
    recombined = builder.linear_combination([(SUBGROUP_ORDER, quotient), (1, e)])
    builder.assert_equal(recombined, h)

    lhs = fixed_base_mul(builder, s)
    e_pk = scalar_mul(builder, e, pk)
    rhs = point_add(builder, r_point, e_pk)
    builder.assert_equal(lhs[0], rhs[0])
    builder.assert_equal(lhs[1], rhs[1])
