"""Data-processing applications (Section IV-E).

ZKDET's processing transformation lets owners sell *computational
results* — trained models — as data assets.  Two proof-of-concept
applications from the paper:

- :mod:`repro.apps.logistic` — logistic regression with a zero-knowledge
  proof of training convergence (|J(beta^(k+1)) - J(beta^(k))| <= eps);
- :mod:`repro.apps.transformer` — a transformer block (multi-head
  attention + feed-forward) with a proof of correct inference.
"""

from repro.apps.logistic import LogisticRegressionTask, logistic_processing
from repro.apps.transformer import TransformerBlock, transformer_processing

__all__ = [
    "LogisticRegressionTask",
    "TransformerBlock",
    "logistic_processing",
    "transformer_processing",
]
