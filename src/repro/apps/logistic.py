"""Logistic regression with a proof of convergence (Section IV-E-1).

The source dataset S holds labelled points [(x_ij), y_i]; the derived
asset D is the trained parameter vector beta.  Following the paper, the
proof shows the training *converged*: the circuit re-derives beta^(k+1)
from the committed beta^(k) with one batch gradient-descent step and
enforces

    || J(beta^(k+1)) - J(beta^(k)) || <= epsilon

with the cross-entropy loss J evaluated in-circuit (sigmoid and log via
the fixed-point polynomial gadgets).

Witness/circuit consistency trick: the *same* ``_forward_pass`` /
``_gd_step`` code builds both the native computation (on a throwaway
builder used as a calculator) and the predicate circuit, so the
fixed-point rounding agrees bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.gadgets.fixedpoint import (
    FixedPointSpec,
    fp_abs,
    fp_assert_le,
    fp_mul,
    fp_poly,
    log_coefficients,
    sigmoid_coefficients,
)
from repro.plonk.circuit import CircuitBuilder, Wire
from repro.core.transformations import Processing

#: Fixed-point format for the regression circuits: products of features,
#: weights and probabilities stay well inside 2**10.
LR_SPEC = FixedPointSpec(frac_bits=12, int_bits=10)


@dataclass
class LogisticRegressionTask:
    """A training task: points, labels, learning rate, tolerance."""

    xs: list  # list of feature vectors (floats)
    ys: list  # list of 0/1 labels
    learning_rate: float = 0.5
    epsilon: float = 0.05
    spec: FixedPointSpec = field(default_factory=lambda: LR_SPEC)

    def __post_init__(self):
        if not self.xs or len(self.xs) != len(self.ys):
            raise ProtocolError("points and labels must align and be non-empty")
        k = len(self.xs[0])
        if any(len(x) != k for x in self.xs):
            raise ProtocolError("all feature vectors must share a dimension")

    @property
    def num_features(self) -> int:
        return len(self.xs[0])

    @property
    def num_points(self) -> int:
        return len(self.xs)

    # ----- dataset encoding ------------------------------------------------------

    def encode_dataset(self) -> list[int]:
        """Flatten (x_ij, y_i) rows into one field-element dataset S."""
        out = []
        for x, y in zip(self.xs, self.ys):
            out.extend(self.spec.encode(v) for v in x)
            out.append(self.spec.encode(float(y)))
        return out

    # ----- the shared forward/step code (native AND in-circuit) -------------------

    def _forward_loss(self, b: CircuitBuilder, points: list, beta: list) -> Wire:
        """Cross-entropy loss J(beta) over the points (wires)."""
        spec = self.spec
        sig = sigmoid_coefficients(spec)
        log = log_coefficients(spec)
        n = len(points)
        inv_n = spec.encode(1.0 / n)
        terms = []
        for x_wires, y_wire in points:
            z = b.constant(0)
            for xw, bw in zip(x_wires, beta[1:]):
                z = b.add(z, fp_mul(b, xw, bw, spec))
            z = b.add(z, beta[0])  # intercept
            h = fp_poly(b, sig, z, spec)
            log_h = fp_poly(b, log, h, spec)
            one_minus_h = b.linear_combination([(-1, h)], constant=spec.encode(1.0))
            log_1mh = fp_poly(b, log, one_minus_h, spec)
            one_minus_y = b.linear_combination([(-1, y_wire)], constant=spec.encode(1.0))
            t1 = fp_mul(b, y_wire, log_h, spec)
            t2 = fp_mul(b, one_minus_y, log_1mh, spec)
            terms.append(b.add(t1, t2))
        total = b.linear_combination([(1, t) for t in terms])
        scaled = fp_mul(b, total, b.constant(inv_n), spec)
        return b.scale(scaled, -1)

    def _gd_step(self, b: CircuitBuilder, points: list, beta: list) -> list:
        """One batch gradient step: beta' = beta - (alpha/n) sum (h-y) x."""
        spec = self.spec
        sig = sigmoid_coefficients(spec)
        n = len(points)
        step = spec.encode(self.learning_rate / n)
        residuals = []
        for x_wires, y_wire in points:
            z = b.constant(0)
            for xw, bw in zip(x_wires, beta[1:]):
                z = b.add(z, fp_mul(b, xw, bw, spec))
            z = b.add(z, beta[0])
            h = fp_poly(b, sig, z, spec)
            residuals.append((b.sub(h, y_wire), x_wires))
        new_beta = []
        # Intercept gradient: sum of residuals.
        grad0 = b.linear_combination([(1, r) for r, _ in residuals])
        new_beta.append(b.sub(beta[0], fp_mul(b, grad0, b.constant(step), spec)))
        for j in range(self.num_features):
            contribs = [fp_mul(b, r, x_wires[j], spec) for r, x_wires in residuals]
            grad = b.linear_combination([(1, c) for c in contribs])
            new_beta.append(b.sub(beta[j + 1], fp_mul(b, grad, b.constant(step), spec)))
        return new_beta

    def _alloc_points(self, b: CircuitBuilder, flat: list) -> list:
        """Group wires [x_i1..x_ik, y_i]* into (x_wires, y_wire) rows."""
        k = self.num_features
        rows = []
        for i in range(0, len(flat), k + 1):
            rows.append((flat[i : i + k], flat[i + k]))
        return rows

    # ----- native training (builder as calculator) ----------------------------------

    def train(self, iterations: int = 25) -> list[int]:
        """Run fixed-point gradient descent; returns beta (field encoded)."""
        b = CircuitBuilder()
        flat_wires = [b.var(v) for v in self.encode_dataset()]
        points = self._alloc_points(b, flat_wires)
        beta = [b.constant(0) for _ in range(self.num_features + 1)]
        for _ in range(iterations):
            beta = self._gd_step(b, points, beta)
        return [b.value(w) for w in beta]

    def loss_of(self, beta: list[int]) -> float:
        """Native fixed-point loss for an encoded beta (diagnostics)."""
        b = CircuitBuilder()
        flat = [b.var(v) for v in self.encode_dataset()]
        points = self._alloc_points(b, flat)
        beta_wires = [b.var(v) for v in beta]
        return self.spec.decode(b.value(self._forward_loss(b, points, beta_wires)))

    def converged(self, beta: list[int]) -> bool:
        """Native check of the convergence predicate (what the circuit
        will enforce)."""
        b = CircuitBuilder()
        flat = [b.var(v) for v in self.encode_dataset()]
        points = self._alloc_points(b, flat)
        beta_wires = [b.var(v) for v in beta]
        j_now = b.value(self._forward_loss(b, points, beta_wires))
        nxt = self._gd_step(b, points, beta_wires)
        j_next = b.value(self._forward_loss(b, points, nxt))
        diff = abs(self.spec.to_signed(j_next) - self.spec.to_signed(j_now))
        return diff <= self.spec.to_signed(self.spec.encode(self.epsilon))

    # ----- predicate circuit -----------------------------------------------------------

    def constrain(self, b: CircuitBuilder, sources: list, derived: list) -> None:
        """The pi_t predicate: derived beta satisfies the convergence bound."""
        (flat,) = sources
        (beta,) = derived
        if len(beta) != self.num_features + 1:
            raise ProtocolError("derived dataset must hold k+1 parameters")
        points = self._alloc_points(b, flat)
        j_now = self._forward_loss(b, points, beta)
        beta_next = self._gd_step(b, points, beta)
        j_next = self._forward_loss(b, points, beta_next)
        diff = fp_abs(b, b.sub(j_next, j_now), self.spec)
        fp_assert_le(b, diff, b.constant(self.spec.encode(self.epsilon)), self.spec)


def logistic_processing(task: LogisticRegressionTask, iterations: int = 25) -> Processing:
    """Wrap a task as a ZKDET Processing transformation (S -> beta)."""

    def apply_fn(sources):
        return [task.train(iterations)]

    def out_sizes_fn(sizes):
        return [task.num_features + 1]

    return Processing(
        apply_fn=apply_fn,
        constrain_fn=task.constrain,
        out_sizes_fn=out_sizes_fn,
        tag="logistic-regression-n%d-k%d" % (task.num_points, task.num_features),
    )
