"""A transformer block with proof of inference (Section IV-E-2).

The block follows the paper's description: scaled dot-product attention

    z_i = softmax(q_i . k^T / sqrt(d_k)) . v,   q_i = x_i W_Q, ...

followed by the position-wise feed-forward network

    d_i = max(0, z_i W_1 + b_1) W_2 + b_2.

The source assets are the input sequence and the (flattened) weights; the
derived asset is the output sequence.  As with logistic regression, one
code path builds both the native forward pass and the predicate circuit,
so fixed-point rounding matches exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.gadgets.fixedpoint import FixedPointSpec, fp_mul, fp_relu
from repro.gadgets.linalg import fp_dot, fp_softmax, fp_vec_add
from repro.plonk.circuit import CircuitBuilder, Wire
from repro.core.transformations import Processing

#: Fixed-point format for the attention circuits.
TF_SPEC = FixedPointSpec(frac_bits=12, int_bits=10)


@dataclass
class TransformerBlock:
    """One encoder block: seq_len x d_model inputs, d_ff hidden units."""

    seq_len: int
    d_model: int
    d_ff: int
    w_q: list  # d_model x d_model (floats)
    w_k: list
    w_v: list
    w_1: list  # d_model x d_ff
    b_1: list  # d_ff
    w_2: list  # d_ff x d_model
    b_2: list  # d_model
    spec: FixedPointSpec = field(default_factory=lambda: TF_SPEC)

    def __post_init__(self):
        def shape(mat, rows, cols, name):
            if len(mat) != rows or any(len(r) != cols for r in mat):
                raise ProtocolError("%s must be %dx%d" % (name, rows, cols))

        shape(self.w_q, self.d_model, self.d_model, "w_q")
        shape(self.w_k, self.d_model, self.d_model, "w_k")
        shape(self.w_v, self.d_model, self.d_model, "w_v")
        shape(self.w_1, self.d_model, self.d_ff, "w_1")
        shape(self.w_2, self.d_ff, self.d_model, "w_2")
        if len(self.b_1) != self.d_ff or len(self.b_2) != self.d_model:
            raise ProtocolError("bias dimensions are wrong")

    @staticmethod
    def random(seq_len: int, d_model: int, d_ff: int, seed: int = 7) -> "TransformerBlock":
        """Small deterministic pseudo-random weights in (-0.5, 0.5)."""
        state = seed

        def nxt():
            nonlocal state
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            return (state >> 16) % 1000 / 1000.0 - 0.5

        mat = lambda r, c: [[nxt() for _ in range(c)] for _ in range(r)]
        vec = lambda n: [nxt() for _ in range(n)]
        return TransformerBlock(
            seq_len, d_model, d_ff,
            mat(d_model, d_model), mat(d_model, d_model), mat(d_model, d_model),
            mat(d_model, d_ff), vec(d_ff), mat(d_ff, d_model), vec(d_model),
        )

    @property
    def num_parameters(self) -> int:
        return 3 * self.d_model**2 + self.d_model * self.d_ff * 2 + self.d_ff + self.d_model

    # ----- encoding ----------------------------------------------------------------

    def encode_input(self, sequence: list) -> list[int]:
        """Flatten a seq_len x d_model float input into a dataset."""
        if len(sequence) != self.seq_len or any(len(r) != self.d_model for r in sequence):
            raise ProtocolError("input must be seq_len x d_model")
        return [self.spec.encode(v) for row in sequence for v in row]

    def encode_weights(self) -> list[int]:
        """Flatten all weights/biases into one dataset (the model asset)."""
        flat: list[float] = []
        for mat in (self.w_q, self.w_k, self.w_v, self.w_1):
            flat.extend(v for row in mat for v in row)
        flat.extend(self.b_1)
        for row in self.w_2:
            flat.extend(row)
        flat.extend(self.b_2)
        return [self.spec.encode(v) for v in flat]

    def _unflatten_weights(self, flat: list) -> dict:
        """Inverse of :meth:`encode_weights` over wires (or values)."""
        pos = 0

        def take_mat(rows, cols):
            nonlocal pos
            out = [flat[pos + r * cols : pos + (r + 1) * cols] for r in range(rows)]
            pos += rows * cols
            return out

        def take_vec(n):
            nonlocal pos
            out = flat[pos : pos + n]
            pos += n
            return out

        w = {
            "w_q": take_mat(self.d_model, self.d_model),
            "w_k": take_mat(self.d_model, self.d_model),
            "w_v": take_mat(self.d_model, self.d_model),
            "w_1": take_mat(self.d_model, self.d_ff),
            "b_1": take_vec(self.d_ff),
            "w_2": take_mat(self.d_ff, self.d_model),
            "b_2": take_vec(self.d_model),
        }
        if pos != len(flat):
            raise ProtocolError("weight dataset has the wrong length")
        return w

    # ----- the forward pass (native AND in-circuit) -----------------------------------

    def _forward(self, b: CircuitBuilder, x_rows: list, weights: dict) -> list[Wire]:
        spec = self.spec
        inv_sqrt_dk = b.constant(spec.encode(1.0 / (self.d_model**0.5)))

        def matvec_t(vec, mat_rows, out_dim):
            """vec (d_in) times matrix (d_in x out_dim) -> out_dim."""
            cols = [[row[j] for row in mat_rows] for j in range(out_dim)]
            return [fp_dot(b, vec, col, spec) for col in cols]

        qs = [matvec_t(x, weights["w_q"], self.d_model) for x in x_rows]
        ks = [matvec_t(x, weights["w_k"], self.d_model) for x in x_rows]
        vs = [matvec_t(x, weights["w_v"], self.d_model) for x in x_rows]

        outputs = []
        for i in range(self.seq_len):
            scores = []
            for j in range(self.seq_len):
                raw = fp_dot(b, qs[i], ks[j], spec)
                scores.append(fp_mul(b, raw, inv_sqrt_dk, spec))
            attn = fp_softmax(b, scores, spec)
            z = []
            for dim in range(self.d_model):
                contribs = [fp_mul(b, attn[j], vs[j][dim], spec) for j in range(self.seq_len)]
                z.append(b.linear_combination([(1, c) for c in contribs]))
            # Feed-forward: relu(z W1 + b1) W2 + b2.
            hidden = matvec_t(z, weights["w_1"], self.d_ff)
            hidden = fp_vec_add(b, hidden, weights["b_1"])
            hidden = [fp_relu(b, h, spec) for h in hidden]
            out = matvec_t(hidden, weights["w_2"], self.d_model)
            out = fp_vec_add(b, out, weights["b_2"])
            outputs.extend(out)
        return outputs

    def _rows(self, flat: list) -> list:
        return [
            flat[i * self.d_model : (i + 1) * self.d_model] for i in range(self.seq_len)
        ]

    def infer(self, sequence: list) -> list[int]:
        """Native forward pass (encoded output), via a calculator builder."""
        b = CircuitBuilder()
        x_flat = [b.var(v) for v in self.encode_input(sequence)]
        w_flat = [b.var(v) for v in self.encode_weights()]
        out = self._forward(b, self._rows(x_flat), self._unflatten_weights(w_flat))
        return [b.value(w) for w in out]

    def infer_floats(self, sequence: list) -> list[float]:
        """Decoded native output, for readability in examples."""
        return [self.spec.decode(v) for v in self.infer(sequence)]

    # ----- predicate ----------------------------------------------------------------

    def constrain(self, b: CircuitBuilder, sources: list, derived: list) -> None:
        """pi_t predicate: derived == TransformerBlock(input; weights)."""
        x_flat, w_flat = sources
        (out_flat,) = derived
        computed = self._forward(b, self._rows(x_flat), self._unflatten_weights(w_flat))
        if len(computed) != len(out_flat):
            raise ProtocolError("output dataset has the wrong length")
        for got, expected in zip(computed, out_flat):
            b.assert_equal(got, expected)


def transformer_processing(block: TransformerBlock) -> Processing:
    """Wrap a block as a Processing transformation (input, weights) -> output."""

    def apply_fn(sources):
        b = CircuitBuilder()
        x_flat = [b.var(v) for v in sources[0]]
        w_flat = [b.var(v) for v in sources[1]]
        out = block._forward(b, block._rows(x_flat), block._unflatten_weights(w_flat))
        return [[b.value(w) for w in out]]

    def out_sizes_fn(sizes):
        return [block.seq_len * block.d_model]

    return Processing(
        apply_fn=apply_fn,
        constrain_fn=block.constrain,
        out_sizes_fn=out_sizes_fn,
        tag="transformer-s%d-d%d-f%d" % (block.seq_len, block.d_model, block.d_ff),
    )
