"""Baby Jubjub: the twisted Edwards curve embedded in the BN254 scalar
field, plus Schnorr signatures over it.

The paper's gadget library lists "elliptic curves and pairing" among its
cryptographic primitives (Section IV-D).  Baby Jubjub is *the* curve for
that job in the Circom ecosystem the prototype uses: its base field is
exactly the SNARK's scalar field, so point arithmetic costs a handful of
constraints.  We use it for data-owner signatures: a seller can sign
listings/attestations and prove knowledge of a valid signature inside a
circuit (see repro.gadgets.babyjubjub).

Curve: a*x^2 + y^2 = 1 + d*x^2*y^2 over F_r with a = 168700, d = 168696;
complete twisted Edwards addition (no special cases).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CurveError
from repro.field.fr import MODULUS as R, inv, rand_fr
from repro.primitives.poseidon import poseidon_hash

A = 168700
D = 168696

#: Order of the prime-order subgroup (cofactor 8).
SUBGROUP_ORDER = 2736030358979909402780800718157159386076813972158567259200215660948447373041

#: The conventional prime-order generator ("Base8").
BASE_X = 5299619240641551281634865583518297030282874472190772894086521144482721001553
BASE_Y = 16950150798460657717958625567821834550301663161624707787222815936182638968203


@dataclass(frozen=True)
class JubjubPoint:
    """An affine point of Baby Jubjub (the identity is (0, 1))."""

    x: int
    y: int

    def __post_init__(self):
        x, y = self.x % R, self.y % R
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        lhs = (A * x * x + y * y) % R
        rhs = (1 + D * x * x % R * y % R * y) % R
        if lhs != rhs:
            raise CurveError("point is not on Baby Jubjub")

    @staticmethod
    def identity() -> "JubjubPoint":
        return JubjubPoint(0, 1)

    @staticmethod
    def base() -> "JubjubPoint":
        return JubjubPoint(BASE_X, BASE_Y)

    def is_identity(self) -> bool:
        return self.x == 0 and self.y == 1

    def __add__(self, other: "JubjubPoint") -> "JubjubPoint":
        if not isinstance(other, JubjubPoint):
            return NotImplemented
        x1, y1, x2, y2 = self.x, self.y, other.x, other.y
        prod = D * x1 % R * x2 % R * y1 % R * y2 % R
        x3 = (x1 * y2 + y1 * x2) % R * inv((1 + prod) % R) % R
        y3 = (y1 * y2 - A * x1 % R * x2) % R * inv((1 - prod) % R) % R
        return JubjubPoint(x3, y3)

    def __neg__(self) -> "JubjubPoint":
        return JubjubPoint(-self.x % R, self.y)

    def __mul__(self, k: int) -> "JubjubPoint":
        k = int(k) % SUBGROUP_ORDER
        result = JubjubPoint.identity()
        base = self
        while k:
            if k & 1:
                result = result + base
            base = base + base
            k >>= 1
        return result

    __rmul__ = __mul__

    def in_subgroup(self) -> bool:
        return (self * SUBGROUP_ORDER).is_identity()


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature (R, s) over Baby Jubjub with a Poseidon
    challenge — the construction that verifies cheaply in-circuit."""

    r_point: JubjubPoint
    s: int


def schnorr_keygen(sk: int | None = None) -> tuple[int, JubjubPoint]:
    """Generate (secret key, public key = sk * Base)."""
    sk = rand_fr() % SUBGROUP_ORDER if sk is None else sk % SUBGROUP_ORDER
    if sk == 0:
        raise CurveError("secret key must be non-zero")
    return sk, JubjubPoint.base() * sk


def _challenge(r_point: JubjubPoint, pk: JubjubPoint, message: int) -> int:
    return poseidon_hash([r_point.x, r_point.y, pk.x, pk.y, message % R]) % SUBGROUP_ORDER


def schnorr_sign(sk: int, message: int, nonce: int | None = None) -> SchnorrSignature:
    """Sign a field-element message: R = r*B, s = r + H(R,pk,m)*sk."""
    sk %= SUBGROUP_ORDER
    base = JubjubPoint.base()
    pk = base * sk
    r = (rand_fr() if nonce is None else nonce) % SUBGROUP_ORDER
    if r == 0:
        r = 1
    r_point = base * r
    e = _challenge(r_point, pk, message)
    s = (r + e * sk) % SUBGROUP_ORDER
    return SchnorrSignature(r_point, s)


def schnorr_verify(pk: JubjubPoint, message: int, sig: SchnorrSignature) -> bool:
    """Check s*B == R + H(R,pk,m)*pk."""
    e = _challenge(sig.r_point, pk, message)
    lhs = JubjubPoint.base() * (sig.s % SUBGROUP_ORDER)
    rhs = sig.r_point + pk * e
    return lhs == rhs
