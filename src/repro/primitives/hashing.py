"""Hash helpers used across the protocols.

- :func:`field_hash` is the H(.) of the exchange protocols (h = H(k)).
  It is Poseidon-based because the same relation must be provable inside a
  circuit (h_v = H(k_v) appears in the key-negotiation proof pi_k).
- :func:`digest_hex` is the content digest for storage URIs (SHA-256);
  it never appears inside a circuit, so a conventional hash is fine and
  mirrors IPFS's multihash addressing.
"""

from __future__ import annotations

import hashlib

from repro.field.fr import MODULUS as R
from repro.primitives.poseidon import poseidon_hash


def field_hash(*values: int) -> int:
    """Circuit-friendly hash of field elements (Poseidon sponge)."""
    return poseidon_hash([v % R for v in values])


def digest_hex(data: bytes) -> str:
    """Content digest used as the storage-network URI."""
    return hashlib.sha256(data).hexdigest()
