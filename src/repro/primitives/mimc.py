"""The MiMC-p/p block cipher in CTR mode.

Following the paper's instantiation (Section VI-A): MiMC-p/p over the
BN254 scalar field with r = 91 rounds and a non-linear permutation of
degree d = 7 per round:

    E_k(x):  x_0 = x;  x_{i+1} = (x_i + k + c_i)^7;  E_k(x) = x_r + k

CTR mode encrypts dataset entry i as  ct_i = pt_i + E_k(nonce + i), so
decryption only re-derives the keystream — the cipher itself never needs
inverting, and the per-entry circuits are tiny (Challenge 2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import FieldError
from repro.field.fr import MODULUS as R

#: Number of rounds (the paper's setting).
ROUNDS = 91

#: Degree of the round permutation x -> x^d.  Must satisfy gcd(d, r-1) = 1
#: so every round is a bijection of the field.
EXPONENT = 7

if (R - 1) % EXPONENT == 0:  # pragma: no cover - depends only on constants
    raise FieldError("MiMC exponent %d is not coprime to r-1" % EXPONENT)


def _derive_constants(rounds: int) -> tuple:
    """Deterministic, nothing-up-my-sleeve round constants.

    The first round constant is zero (standard MiMC convention); the rest
    come from hashing a domain tag with a counter.
    """
    constants = [0]
    for i in range(1, rounds):
        digest = hashlib.sha256(b"repro.mimc.constant:%d" % i).digest()
        constants.append(int.from_bytes(digest, "little") % R)
    return tuple(constants)


ROUND_CONSTANTS = _derive_constants(ROUNDS)


class MiMC:
    """The MiMC-p/p keyed permutation."""

    def __init__(self, rounds: int = ROUNDS, exponent: int = EXPONENT):
        if (R - 1) % exponent == 0:
            raise FieldError("exponent must be coprime to r-1")
        self.rounds = rounds
        self.exponent = exponent
        self.constants = (
            ROUND_CONSTANTS if rounds == ROUNDS else _derive_constants(rounds)
        )

    def encrypt_block(self, key: int, block: int) -> int:
        """Apply the keyed permutation E_k to one field element."""
        x = block % R
        key %= R
        for c in self.constants:
            x = pow((x + key + c) % R, self.exponent, R)
        return (x + key) % R

    def decrypt_block(self, key: int, block: int) -> int:
        """Invert E_k (x^d inverted via the d^-1 mod (r-1) exponent)."""
        key %= R
        d_inv = pow(self.exponent, -1, R - 1)
        x = (block - key) % R
        for c in reversed(self.constants):
            x = (pow(x, d_inv, R) - key - c) % R
        return x

    def keystream(self, key: int, nonce: int, length: int) -> list[int]:
        """The CTR keystream E_k(nonce), E_k(nonce+1), ..."""
        return [self.encrypt_block(key, (nonce + i) % R) for i in range(length)]


@dataclass(frozen=True)
class CtrCiphertext:
    """A CTR-mode ciphertext: the nonce plus encrypted field elements."""

    nonce: int
    blocks: tuple

    def __len__(self) -> int:
        return len(self.blocks)


def mimc_encrypt_ctr(key: int, plaintext: list[int], nonce: int) -> CtrCiphertext:
    """Encrypt a list of field elements under MiMC-CTR."""
    cipher = MiMC()
    stream = cipher.keystream(key, nonce, len(plaintext))
    return CtrCiphertext(
        nonce=nonce % R,
        blocks=tuple((p + s) % R for p, s in zip(plaintext, stream)),
    )


def mimc_decrypt_ctr(key: int, ciphertext: CtrCiphertext) -> list[int]:
    """Decrypt a MiMC-CTR ciphertext."""
    cipher = MiMC()
    stream = cipher.keystream(key, ciphertext.nonce, len(ciphertext.blocks))
    return [(c - s) % R for c, s in zip(ciphertext.blocks, stream)]
