"""Byte <-> field-element codecs.

Datasets arrive as bytes; circuits, ciphers and commitments work on field
elements.  We pack 31 bytes per element (the largest whole-byte chunk
guaranteed below the 254-bit modulus), with an explicit length prefix so
decoding is unambiguous.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.field.fr import MODULUS as R

#: Payload bytes carried by one field element.
CHUNK = 31


def bytes_to_elements(data: bytes) -> list[int]:
    """Encode bytes as field elements; element 0 carries the byte length."""
    out = [len(data)]
    for i in range(0, len(data), CHUNK):
        out.append(int.from_bytes(data[i : i + CHUNK], "little"))
    return out


def elements_to_bytes(elements: list[int]) -> bytes:
    """Decode the output of :func:`bytes_to_elements`."""
    if not elements:
        raise ReproError("cannot decode an empty element list")
    length = elements[0]
    expected_chunks = (length + CHUNK - 1) // CHUNK
    if len(elements) - 1 != expected_chunks:
        raise ReproError(
            "length prefix %d implies %d chunks, got %d"
            % (length, expected_chunks, len(elements) - 1)
        )
    data = bytearray()
    for e in elements[1:]:
        if not 0 <= e < R:
            raise ReproError("element out of field range")
        data += e.to_bytes(CHUNK, "little")
    return bytes(data[:length])
