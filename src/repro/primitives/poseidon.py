"""The Poseidon permutation and sponge hash.

Instantiated as in the paper (Section VI-A): x^5-Poseidon-128 with
R_F = 8 full rounds and R_P = 60 partial rounds over the BN254 scalar
field, width t = 3 by default (rate 2, capacity 1).  The substitution-
permutation structure — S-box x^5, MDS mixing — is what gives Poseidon its
~8x constraint advantage over Pedersen commitments in circuits.

Round constants and the (Cauchy) MDS matrix are derived deterministically
so prover and verifier always agree.
"""

from __future__ import annotations

import hashlib

from repro.errors import FieldError
from repro.field.fr import MODULUS as R, inv

#: Full and partial round counts (the paper's recommended settings).
FULL_ROUNDS = 8
PARTIAL_ROUNDS = 60

#: S-box exponent; gcd(5, r-1) = 1 for BN254.
ALPHA = 5

if (R - 1) % ALPHA == 0:  # pragma: no cover
    raise FieldError("Poseidon alpha is not coprime to r-1")


def _round_constants(width: int, rounds: int) -> tuple:
    out = []
    for i in range(rounds * width):
        digest = hashlib.sha256(b"repro.poseidon.rc:%d:%d" % (width, i)).digest()
        out.append(int.from_bytes(digest, "little") % R)
    return tuple(out)


def _mds_matrix(width: int) -> tuple:
    """A Cauchy matrix M[i][j] = 1 / (x_i + y_j), guaranteed MDS."""
    xs = list(range(width))
    ys = list(range(width, 2 * width))
    return tuple(
        tuple(inv((x + y) % R) for y in ys) for x in xs
    )


class Poseidon:
    """The Poseidon permutation of a given width."""

    _instances: dict[int, "Poseidon"] = {}

    def __init__(self, width: int = 3):
        if width < 2:
            raise FieldError("Poseidon width must be at least 2")
        self.width = width
        self.full_rounds = FULL_ROUNDS
        self.partial_rounds = PARTIAL_ROUNDS
        total = FULL_ROUNDS + PARTIAL_ROUNDS
        self.round_constants = _round_constants(width, total)
        self.mds = _mds_matrix(width)

    @classmethod
    def get(cls, width: int = 3) -> "Poseidon":
        """Cached instance (constants derivation is not free)."""
        if width not in cls._instances:
            cls._instances[width] = cls(width)
        return cls._instances[width]

    def _mix(self, state: list[int]) -> list[int]:
        return [
            sum(self.mds[i][j] * state[j] for j in range(self.width)) % R
            for i in range(self.width)
        ]

    def permute(self, state: list[int]) -> list[int]:
        """Apply the full permutation to a state of ``width`` elements."""
        if len(state) != self.width:
            raise FieldError("state width mismatch")
        state = [s % R for s in state]
        half_full = self.full_rounds // 2
        total = self.full_rounds + self.partial_rounds
        rc = self.round_constants
        for rnd in range(total):
            offset = rnd * self.width
            state = [(s + rc[offset + i]) % R for i, s in enumerate(state)]
            if rnd < half_full or rnd >= total - half_full:
                state = [pow(s, ALPHA, R) for s in state]
            else:
                state[0] = pow(state[0], ALPHA, R)
            state = self._mix(state)
        return state

    def hash(self, inputs: list[int]) -> int:
        """Sponge hash of arbitrarily many field elements (rate width-1).

        The capacity element is initialised with a length tag so that
        inputs of different lengths never collide by padding.
        """
        rate = self.width - 1
        state = [len(inputs) % R] + [0] * rate
        for i in range(0, max(len(inputs), 1), rate):
            chunk = inputs[i : i + rate]
            for j, value in enumerate(chunk):
                state[1 + j] = (state[1 + j] + value) % R
            state = self.permute(state)
        return state[0]


def poseidon_hash(inputs: list[int], width: int = 3) -> int:
    """Hash field elements with the cached width-``width`` Poseidon."""
    return Poseidon.get(width).hash([i % R for i in inputs])
