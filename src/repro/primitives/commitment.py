"""The commitment scheme Gamma = (Commit, Open) of Definition 2.1.

Instantiated with the Poseidon sponge:

    Commit(m) = (c, o)  with  c = Poseidon(o || m),  o random.

Binding follows from Poseidon's collision resistance, hiding from the
uniformly random blinder ``o`` absorbed before the message.  Both dataset
vectors and single keys are committed through the same interface, which is
what lets the transformation and exchange protocols share commitments
(the commit-and-prove composition of Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.field.fr import MODULUS as R, random_scalar
from repro.primitives.poseidon import poseidon_hash


@dataclass(frozen=True)
class Commitment:
    """A binding, hiding commitment to a message vector."""

    value: int

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(32, "little")


def _as_vector(message) -> list[int]:
    if isinstance(message, int):
        return [message % R]
    return [int(m) % R for m in message]


def commit(message, blinder: int | None = None) -> tuple[Commitment, int]:
    """Commit to a field element or vector; returns ``(c, o)``."""
    # A zero blinder degrades the commitment from hiding to binding-only.
    o = random_scalar(nonzero=True) if blinder is None else blinder % R
    c = poseidon_hash([o] + _as_vector(message))
    return Commitment(c), o


def open_commitment(message, commitment: Commitment, blinder: int) -> bool:
    """The Open algorithm: 1 (True) iff the commitment matches."""
    return poseidon_hash([blinder % R] + _as_vector(message)) == commitment.value
