"""Native (out-of-circuit) cryptographic primitives.

ZKDET's Challenge 2 is proof efficiency over large data; the paper answers
it with circuit-friendly primitives: the MiMC block cipher for encryption
and the Poseidon permutation for hashing/commitments (Section IV-C).  This
package provides the fast native implementations; ``repro.gadgets``
re-implements each inside Plonk circuits, and equivalence between the two
is enforced by tests.
"""

from repro.primitives.mimc import MiMC, mimc_encrypt_ctr, mimc_decrypt_ctr
from repro.primitives.poseidon import Poseidon, poseidon_hash
from repro.primitives.commitment import Commitment, commit, open_commitment
from repro.primitives.encoding import bytes_to_elements, elements_to_bytes
from repro.primitives.hashing import field_hash, digest_hex

__all__ = [
    "Commitment",
    "MiMC",
    "Poseidon",
    "bytes_to_elements",
    "commit",
    "digest_hex",
    "elements_to_bytes",
    "field_hash",
    "mimc_decrypt_ctr",
    "mimc_encrypt_ctr",
    "open_commitment",
    "poseidon_hash",
]
