"""Content-addressed store: URI = SHA-256 digest of the stored bytes.

This realises the paper's observation that "content addressing in IPFS is
based on the hash digest of datasets, we can thus treat the data's URI as
its hash commitment" (Section III-A): :meth:`get` re-verifies the digest
on every read, so silently tampered content is detected.
"""

from __future__ import annotations

from repro import faults
from repro.errors import StorageCorruptionError, StorageError
from repro.primitives.hashing import digest_hex


class ContentStore:
    """An in-process content-addressed blob store.

    Fault-plane sites (active only under a :mod:`repro.faults` plan):
    ``storage.put`` (upload loss / latency), ``storage.get`` (chunk loss
    / slow read) and ``storage.get.data`` (in-flight corruption — which
    the digest check below then detects, raised as the *retryable*
    :class:`StorageCorruptionError`).
    """

    def __init__(self):
        self._blobs: dict[str, bytes] = {}
        self._pins: dict[str, set] = {}

    def put(self, data: bytes, owner: str = "anonymous") -> str:
        """Store bytes; returns the content URI (and pins it for owner)."""
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError("content must be bytes")
        faults.check("storage.put")
        uri = digest_hex(bytes(data))
        self._blobs[uri] = bytes(data)
        self._pins.setdefault(uri, set()).add(owner)
        return uri

    def get(self, uri: str) -> bytes:
        """Fetch bytes by URI, verifying content integrity."""
        faults.check("storage.get")
        data = self._blobs.get(uri)
        if data is None:
            raise StorageError("no content at %s" % uri)
        data = faults.filter_bytes("storage.get.data", data)
        if digest_hex(data) != uri:
            raise StorageCorruptionError(
                "content at %s fails integrity verification" % uri
            )
        return data

    def has(self, uri: str) -> bool:
        return uri in self._blobs

    def unpin(self, uri: str, owner: str) -> None:
        """Remove an owner's pin; content is dropped once unpinned by all.

        Mirrors the threat-model guarantee that data persists "unless
        explicitly requested by its owner".
        """
        pins = self._pins.get(uri)
        if not pins or owner not in pins:
            raise StorageError("%s holds no pin on %s" % (owner, uri))
        pins.discard(owner)
        if not pins:
            del self._blobs[uri]
            del self._pins[uri]

    def tamper(self, uri: str, data: bytes) -> None:
        """Adversarially overwrite stored bytes (test hook).

        Subsequent :meth:`get` calls raise, demonstrating that tampering
        "cannot be concealed".
        """
        if uri not in self._blobs:
            raise StorageError("no content at %s" % uri)
        self._blobs[uri] = bytes(data)
