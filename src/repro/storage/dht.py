"""A Kademlia-flavoured DHT simulation.

Models the node-level behaviour of the storage network: content is
replicated onto the k nodes whose identifiers are XOR-closest to the
content digest; lookups walk greedily closer per hop; nodes can join and
leave with automatic re-replication.  Used to show that dataset
availability survives churn — the availability assumption the ZKDET
protocols rely on.
"""

from __future__ import annotations

import hashlib

from repro import faults
from repro.errors import StorageCorruptionError, StorageError, StorageUnavailableError

#: Identifier width in bits.
ID_BITS = 64


def _node_id(name: str) -> int:
    return int.from_bytes(hashlib.sha256(b"node:" + name.encode()).digest()[:8], "big")


def _content_id(uri: str) -> int:
    return int.from_bytes(hashlib.sha256(b"content:" + uri.encode()).digest()[:8], "big")


class DHTNode:
    """One storage node: an id plus its local blob map."""

    def __init__(self, name: str):
        self.name = name
        self.node_id = _node_id(name)
        self.blobs: dict[str, bytes] = {}


class DHTNetwork:
    """The full network: placement, lookup, and churn handling."""

    def __init__(self, node_names: list[str], replication: int = 3):
        if not node_names:
            raise StorageError("a DHT needs at least one node")
        if replication < 1:
            raise StorageError("replication factor must be positive")
        self.replication = replication
        self.nodes: dict[str, DHTNode] = {}
        for name in node_names:
            self.nodes[name] = DHTNode(name)

    def _closest(self, key: int, count: int) -> list[DHTNode]:
        ranked = sorted(self.nodes.values(), key=lambda n: n.node_id ^ key)
        return ranked[:count]

    def put(self, data: bytes) -> str:
        """Store bytes on the ``replication`` closest nodes.

        Under a fault plan, individual replica writes can be lost
        (site ``dht.node.put``); the write still succeeds as long as at
        least one replica lands, mirroring quorum-less DHT semantics.
        """
        uri = hashlib.sha256(data).hexdigest()
        key = _content_id(uri)
        stored = 0
        for node in self._closest(key, self.replication):
            if faults.unavailable("dht.node.put"):
                continue  # this replica write was lost in transit
            node.blobs[uri] = bytes(data)
            stored += 1
        if stored == 0:
            raise StorageUnavailableError(
                "no replica of %s could be written; all target nodes unreachable" % uri
            )
        return uri

    def get(self, uri: str) -> bytes:
        """Fetch content, verifying the digest."""
        data, _hops = self.get_with_hops(uri)
        return data

    def get_with_hops(self, uri: str) -> tuple[bytes, int]:
        """Fetch content and report how many nodes were contacted.

        Walks the nodes in XOR-closeness order (each probe is one "hop")
        until a replica is found.
        """
        faults.check("dht.get")
        key = _content_id(uri)
        found_corrupt = False
        for hops, node in enumerate(self._closest(key, len(self.nodes)), start=1):
            if faults.unavailable("dht.node.get"):
                continue  # node unreachable this probe; walk on
            data = node.blobs.get(uri)
            if data is not None:
                data = faults.filter_bytes("dht.node.data", data)
                if hashlib.sha256(data).hexdigest() != uri:
                    # A corrupt replica is detectable, so keep walking —
                    # another replica may be intact.
                    found_corrupt = True
                    continue
                return data, hops
        if found_corrupt:
            raise StorageCorruptionError(
                "every reachable replica of %s is corrupt" % uri
            )
        raise StorageUnavailableError(
            "content %s not found on any reachable node" % uri
        )

    def replica_count(self, uri: str) -> int:
        return sum(1 for n in self.nodes.values() if uri in n.blobs)

    def join(self, name: str) -> None:
        """Add a node and migrate content it should now host."""
        if name in self.nodes:
            raise StorageError("node %s already present" % name)
        node = DHTNode(name)
        self.nodes[name] = node
        # Re-place every blob under the new topology.
        self._rebalance()

    def leave(self, name: str) -> None:
        """Remove a node; surviving replicas are re-replicated."""
        if name not in self.nodes:
            raise StorageError("node %s not present" % name)
        if len(self.nodes) == 1:
            raise StorageError("cannot remove the last node")
        departing = self.nodes.pop(name)
        self._rebalance(extra_blobs=departing.blobs)

    def _rebalance(self, extra_blobs: dict | None = None) -> None:
        all_blobs: dict[str, bytes] = {}
        for node in self.nodes.values():
            all_blobs.update(node.blobs)
        if extra_blobs:
            all_blobs.update(extra_blobs)
        for node in self.nodes.values():
            node.blobs.clear()
        for uri, data in all_blobs.items():
            key = _content_id(uri)
            for node in self._closest(key, self.replication):
                node.blobs[uri] = data
