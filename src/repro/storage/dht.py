"""A Kademlia-flavoured DHT simulation.

Models the node-level behaviour of the storage network: content is
replicated onto the k nodes whose identifiers are XOR-closest to the
content digest; lookups walk greedily closer per hop; nodes can join and
leave with automatic re-replication.  Used to show that dataset
availability survives churn — the availability assumption the ZKDET
protocols rely on.

Churn handling is *incremental*: a join or leave touches only the blobs
whose top-k placement actually changes (O(catalog) comparisons, O(moved)
copies), not a full wipe-and-replace of every replica.  The network also
keeps a content catalog (what exists) separate from the placement map
(who holds it), and :meth:`DHTNetwork.repair` re-derives the exact
top-k placement from the catalog — the anti-entropy pass that heals
replicas lost to injected faults, and the oracle the incremental paths
are tested against (after faultless churn, repair changes nothing).
"""

from __future__ import annotations

import hashlib

from repro import faults
from repro.errors import StorageCorruptionError, StorageError, StorageUnavailableError

#: Identifier width in bits.
ID_BITS = 64


def _node_id(name: str) -> int:
    return int.from_bytes(hashlib.sha256(b"node:" + name.encode()).digest()[:8], "big")


def _content_id(uri: str) -> int:
    return int.from_bytes(hashlib.sha256(b"content:" + uri.encode()).digest()[:8], "big")


class DHTNode:
    """One storage node: an id plus its local blob map."""

    def __init__(self, name: str):
        self.name = name
        self.node_id = _node_id(name)
        self.blobs: dict[str, bytes] = {}


class DHTNetwork:
    """The full network: placement, lookup, and churn handling."""

    def __init__(self, node_names: list[str], replication: int = 3):
        if not node_names:
            raise StorageError("a DHT needs at least one node")
        if replication < 1:
            raise StorageError("replication factor must be positive")
        self.replication = replication
        self.nodes: dict[str, DHTNode] = {}
        for name in node_names:
            self.nodes[name] = DHTNode(name)
        #: Everything ever stored (uri -> bytes): the directory layer,
        #: assumed durable — repair re-replicates from it.
        self._catalog: dict[str, bytes] = {}
        #: uri -> names of nodes currently holding a replica (mirror of
        #: the per-node blob maps, kept in lockstep).
        self._placement: dict[str, set[str]] = {}

    def _closest(self, key: int, count: int) -> list[DHTNode]:
        ranked = sorted(self.nodes.values(), key=lambda n: n.node_id ^ key)
        return ranked[:count]

    def put(self, data: bytes) -> str:
        """Store bytes on the ``replication`` closest nodes.

        Under a fault plan, individual replica writes can be lost
        (site ``dht.node.put``); the write still succeeds as long as at
        least one replica lands, mirroring quorum-less DHT semantics.
        """
        uri = hashlib.sha256(data).hexdigest()
        key = _content_id(uri)
        stored = 0
        for node in self._closest(key, self.replication):
            if faults.unavailable("dht.node.put"):
                continue  # this replica write was lost in transit
            node.blobs[uri] = bytes(data)
            self._placement.setdefault(uri, set()).add(node.name)
            stored += 1
        if stored == 0:
            raise StorageUnavailableError(
                "no replica of %s could be written; all target nodes unreachable" % uri
            )
        self._catalog[uri] = bytes(data)
        return uri

    def get(self, uri: str) -> bytes:
        """Fetch content, verifying the digest."""
        data, _hops = self.get_with_hops(uri)
        return data

    def get_with_hops(self, uri: str) -> tuple[bytes, int]:
        """Fetch content and report how many nodes were contacted.

        Walks the nodes in XOR-closeness order (each probe is one "hop")
        until a replica is found.
        """
        faults.check("dht.get")
        key = _content_id(uri)
        found_corrupt = False
        for hops, node in enumerate(self._closest(key, len(self.nodes)), start=1):
            if faults.unavailable("dht.node.get"):
                continue  # node unreachable this probe; walk on
            data = node.blobs.get(uri)
            if data is not None:
                data = faults.filter_bytes("dht.node.data", data)
                if hashlib.sha256(data).hexdigest() != uri:
                    # A corrupt replica is detectable, so keep walking —
                    # another replica may be intact.
                    found_corrupt = True
                    continue
                return data, hops
        if found_corrupt:
            raise StorageCorruptionError(
                "every reachable replica of %s is corrupt" % uri
            )
        raise StorageUnavailableError(
            "content %s not found on any reachable node" % uri
        )

    def replica_count(self, uri: str) -> int:
        return sum(1 for n in self.nodes.values() if uri in n.blobs)

    # ----- churn ------------------------------------------------------------------

    def _store(self, node: DHTNode, uri: str, data: bytes) -> None:
        node.blobs[uri] = data
        self._placement.setdefault(uri, set()).add(node.name)

    def _drop(self, node: DHTNode, uri: str) -> None:
        node.blobs.pop(uri, None)
        holders = self._placement.get(uri)
        if holders is not None:
            holders.discard(node.name)

    def join(self, name: str) -> None:
        """Add a node, migrating only the blobs it should now host.

        For each catalogued blob: if the network is under-replicated the
        new node takes a copy outright; otherwise it takes over only if
        it is XOR-closer than the farthest current holder, which then
        drops its replica.  Migration writes go over the network and can
        be lost under a fault plan (site ``dht.node.put``) — a lost copy
        leaves the old holder in place, and :meth:`repair` heals the
        placement later.
        """
        if name in self.nodes:
            raise StorageError("node %s already present" % name)
        node = DHTNode(name)
        self.nodes[name] = node
        for uri, data in self._catalog.items():
            key = _content_id(uri)
            holders = self._placement.setdefault(uri, set())
            evictee = None
            if len(holders) >= self.replication:
                farthest = max(holders, key=lambda h: _node_id(h) ^ key)
                if (_node_id(farthest) ^ key) <= (node.node_id ^ key):
                    continue  # new node is not in this blob's top-k
                evictee = farthest
            if faults.unavailable("dht.node.put"):
                continue  # migration copy lost; old placement stands
            self._store(node, uri, data)
            if evictee is not None and evictee in self.nodes:
                self._drop(self.nodes[evictee], uri)

    def leave(self, name: str) -> None:
        """Remove a node, handing each of its replicas to the closest
        remaining non-holder.

        Only the departing node's blobs move; everything else keeps its
        placement (its top-k among the survivors is unchanged).  Handoff
        writes can be lost under a fault plan (site ``dht.node.put``),
        leaving a blob under-replicated until :meth:`repair`.
        """
        if name not in self.nodes:
            raise StorageError("node %s not present" % name)
        if len(self.nodes) == 1:
            raise StorageError("cannot remove the last node")
        departing = self.nodes.pop(name)
        for uri, data in departing.blobs.items():
            key = _content_id(uri)
            holders = self._placement.setdefault(uri, set())
            holders.discard(name)
            heirs = [n for n in self._closest(key, len(self.nodes)) if n.name not in holders]
            if not heirs:
                continue  # every survivor already holds a replica
            if faults.unavailable("dht.node.put"):
                continue  # handoff lost; blob stays under-replicated
            self._store(heirs[0], uri, data)

    def repair(self) -> tuple[int, int]:
        """Anti-entropy: force every catalogued blob onto exactly its
        top-k closest nodes, re-replicating from the catalog.

        Returns ``(added, removed)`` replica counts.  This is the exact
        placement the incremental churn paths maintain when no faults
        fire — so after faultless churn repair reports ``(0, 0)`` — and
        the recovery path that heals replicas lost to injected faults.
        Repair itself is an operator-plane pass and does not consult the
        fault plane.
        """
        added = removed = 0
        for uri, data in self._catalog.items():
            key = _content_id(uri)
            target = {n.name for n in self._closest(key, self.replication)}
            holders = self._placement.setdefault(uri, set())
            for name in sorted(target - holders):
                self._store(self.nodes[name], uri, data)
                added += 1
            for name in sorted(holders - target):
                if name in self.nodes:
                    self._drop(self.nodes[name], uri)
                else:
                    holders.discard(name)
                removed += 1
        return added, removed
