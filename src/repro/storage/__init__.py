"""Content-addressed distributed storage (the IPFS stand-in).

The paper's threat model assumes datasets live in a public storage
network where (i) content is addressed by its digest, so tampering is
detectable, and (ii) anything published can be fetched by anyone holding
the URI.  :class:`~repro.storage.dht.DHTNetwork` simulates the node-level
behaviour (replication, lookup, churn); the ZKDET core talks to the
simpler :class:`~repro.storage.content_store.ContentStore` interface.
"""

from repro.storage.content_store import ContentStore
from repro.storage.dht import DHTNetwork

__all__ = ["ContentStore", "DHTNetwork"]
