"""Substrate mode: the switch between the fast and reference data planes.

The scalar/point data plane has two complete implementations of every
accelerated kernel:

- **fast** (the default) — GLV endomorphism decomposition for G1 scalar
  multiplication, lazy-reduction NTT butterflies over the contiguous
  scalar representation, and zero-pickle shared-memory dispatch in the
  parallel backend;
- **reference** — the retained pre-substrate kernels: plain double-and-
  add / full-width Pippenger windows, modulo-per-butterfly NTT, and
  pickled worker payloads.

Both modes are *observationally identical* (the differential suite
asserts bit-for-bit equality of affine points, NTT outputs and engine
results); they differ only in speed.  The mode is read once from the
``REPRO_SUBSTRATE`` environment variable and can be flipped at runtime —
``benchmarks/bench_substrate.py`` uses :func:`use_mode` to measure the
same proof under both planes in one process.

This module is deliberately tiny and import-free so that ``field/``,
``curve/`` and ``backend/`` can all consult it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

MODE_FAST = "fast"
MODE_REFERENCE = "reference"

_VALID = (MODE_FAST, MODE_REFERENCE)

_mode: str = MODE_FAST


def _init_from_env() -> str:
    raw = os.environ.get("REPRO_SUBSTRATE", MODE_FAST).strip().lower() or MODE_FAST
    return raw if raw in _VALID else MODE_FAST


_mode = _init_from_env()


def mode() -> str:
    """The active substrate mode (``"fast"`` or ``"reference"``)."""
    return _mode


def fast_enabled() -> bool:
    """True when the accelerated kernels (GLV, lazy NTT, shm) are active."""
    return _mode == MODE_FAST


def set_mode(new_mode: str) -> str:
    """Set the substrate mode; returns the previous mode.

    Raises :class:`ValueError` on anything other than ``"fast"`` /
    ``"reference"`` so a typo cannot silently select the slow plane.
    """
    global _mode
    if new_mode not in _VALID:
        raise ValueError("unknown substrate mode %r (expected one of %s)" % (new_mode, _VALID))
    previous = _mode
    _mode = new_mode
    return previous


@contextmanager
def use_mode(new_mode: str) -> Iterator[str]:
    """Scoped substrate-mode override (restores the previous mode)."""
    previous = set_mode(new_mode)
    try:
        yield new_mode
    finally:
        set_mode(previous)
